"""SIPp-style workload generation — the test bed of §3.3.

The paper drives the proxy with "an automated test suite.  The main
utility of this test suite is SIPp, a tool for SIP load testing", and
evaluates on eight test cases T1-T8.  The paper never specifies what
each case contains (they are the vendor's regression scenarios), so the
cases here are *constructed* to span the proxy's feature surface the
way a real suite would — registrations, call setup/teardown, presence,
retransmissions, mixed load — with volumes chosen so the warning-count
profile has the Figure 5/6 shape (see EXPERIMENTS.md for the
paper-vs-measured comparison).

Everything is generated from a seed: the same test case id always
yields the same message sequence, so detector runs are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util.rng import SplitMix64
from repro.sip.message import Header, SipMessage
from repro.sip.parser import serialize_message

__all__ = [
    "TestCase",
    "evaluation_cases",
    "predictive_cases",
    "scenario_calls",
    "CallScenario",
]

_DOMAINS = ("example.com", "biloxi.example.com", "atlanta.example.com")
_USERS = ("alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi")


@dataclass(slots=True)
class TestCase:
    """One SIPp scenario: an ordered stream of wire messages."""

    #: Not a pytest class, despite the (domain-accurate) name.
    __test__ = False

    case_id: str
    name: str
    description: str
    wires: list[str] = field(default_factory=list)
    #: Bug set this case is designed around, or ``None`` to let the
    #: harness default apply (``EVALUATION_BUGS`` for T1-T8).  The
    #: predictive cases T9/T10 pin their single latent bug here so
    #: every runner — harness, CLI, CI — seeds the same server.
    bugs: frozenset[str] | None = None

    @property
    def message_count(self) -> int:
        return len(self.wires)

    def __repr__(self) -> str:
        return f"TestCase({self.case_id}: {self.name}, {len(self.wires)} msgs)"


@dataclass(slots=True)
class CallScenario:
    """Message sequences for one dialog (kept in protocol order)."""

    call_id: str
    messages: list[SipMessage] = field(default_factory=list)


class _Builder:
    """Stateful generator with seeded randomness."""

    def __init__(self, seed: int) -> None:
        self.rng = SplitMix64(seed)
        self._call_counter = 0

    def _next_call_id(self, tag: str) -> str:
        self._call_counter += 1
        return f"{tag}-{self._call_counter:04d}@test.invalid"

    def _user(self, domain: str | None = None) -> str:
        name = self.rng.choice(_USERS)
        domain = domain or self.rng.choice(_DOMAINS)
        return f"sip:{name}@{domain}"

    # -- scenario primitives -------------------------------------------

    def register(self, user: str | None = None, *, renew: bool = False) -> CallScenario:
        """REGISTER (optionally a renewal: two registrations, same user
        — the second deletes the first binding, a §4.2.1 site)."""
        user = user or self._user()
        scenario = CallScenario(self._next_call_id("reg"))
        count = 2 if renew else 1
        for cseq in range(1, count + 1):
            scenario.messages.append(
                SipMessage.request(
                    "REGISTER",
                    f"sip:{user.split('@', 1)[1]}",
                    call_id=scenario.call_id,
                    cseq=cseq,
                    from_uri=user,
                    to_uri=user,
                    extra=[Header("Contact", f"{user};transport=udp")],
                )
            )
        return scenario

    def call(
        self,
        caller: str | None = None,
        callee: str | None = None,
        *,
        with_info: bool = False,
        cancelled: bool = False,
        retransmit: bool = False,
    ) -> CallScenario:
        """A full dialog: INVITE [retrans] [INFO] (CANCEL | ACK BYE)."""
        caller = caller or self._user()
        callee = callee or self._user()
        scenario = CallScenario(self._next_call_id("call"))
        invite = SipMessage.request(
            "INVITE",
            callee,
            call_id=scenario.call_id,
            cseq=1,
            from_uri=caller,
            to_uri=callee,
            body="v=0 o=- s=call c=IN IP4 10.0.0.1 m=audio 49170 RTP/AVP 0",
        )
        scenario.messages.append(invite)
        if retransmit:
            scenario.messages.append(invite)
        if cancelled:
            scenario.messages.append(
                SipMessage.request(
                    "CANCEL",
                    callee,
                    call_id=scenario.call_id,
                    cseq=1,
                    from_uri=caller,
                    to_uri=callee,
                )
            )
            return scenario
        scenario.messages.append(
            SipMessage.request(
                "ACK",
                callee,
                call_id=scenario.call_id,
                cseq=1,
                from_uri=caller,
                to_uri=callee,
            )
        )
        if with_info:
            scenario.messages.append(
                SipMessage.request(
                    "INFO",
                    callee,
                    call_id=scenario.call_id,
                    cseq=2,
                    from_uri=caller,
                    to_uri=callee,
                    body="Signal=5",
                )
            )
        scenario.messages.append(
            SipMessage.request(
                "BYE",
                callee,
                call_id=scenario.call_id,
                cseq=3,
                from_uri=caller,
                to_uri=callee,
            )
        )
        return scenario

    def presence(self, watcher: str | None = None, target: str | None = None) -> CallScenario:
        """SUBSCRIBE followed by a NOTIFY for the same subscription."""
        watcher = watcher or self._user()
        target = target or self._user()
        scenario = CallScenario(self._next_call_id("sub"))
        scenario.messages.append(
            SipMessage.request(
                "SUBSCRIBE",
                target,
                call_id=scenario.call_id,
                cseq=1,
                from_uri=watcher,
                to_uri=target,
                extra=[Header("Event", "presence"), Header("Expires", "3600")],
            )
        )
        scenario.messages.append(
            SipMessage.request(
                "NOTIFY",
                watcher,
                call_id=scenario.call_id,
                cseq=2,
                from_uri=target,
                to_uri=watcher,
                extra=[Header("Event", "presence")],
                body="status=open",
            )
        )
        return scenario

    def abandoned_call(self, caller: str | None = None, callee: str | None = None) -> CallScenario:
        """An INVITE that is never ACKed or torn down.

        The caller vanished (crashed client, lost network): the proxy's
        transaction sits in COMPLETED until something expires it — the
        workload that exercises the RFC 3261 timeout transitions and the
        server's reaper.
        """
        caller = caller or self._user()
        callee = callee or self._user()
        scenario = CallScenario(self._next_call_id("lost"))
        scenario.messages.append(
            SipMessage.request(
                "INVITE",
                callee,
                call_id=scenario.call_id,
                cseq=1,
                from_uri=caller,
                to_uri=callee,
                body="v=0 o=- s=lost",
            )
        )
        return scenario

    def options(self) -> CallScenario:
        user = self._user()
        scenario = CallScenario(self._next_call_id("opt"))
        scenario.messages.append(
            SipMessage.request(
                "OPTIONS",
                f"sip:{self.rng.choice(_DOMAINS)}",
                call_id=scenario.call_id,
                cseq=1,
                from_uri=user,
                to_uri=f"sip:{self.rng.choice(_DOMAINS)}",
            )
        )
        return scenario

    # -- weaving ----------------------------------------------------------

    def weave(self, scenarios: list[CallScenario]) -> list[str]:
        """Interleave dialogs into one arrival stream.

        Each step picks a random live dialog and emits its next message,
        so dialogs overlap the way concurrent callers do, while each
        dialog's internal order is preserved.
        """
        cursors = [0] * len(scenarios)
        wires: list[str] = []
        live = [i for i, s in enumerate(scenarios) if s.messages]
        while live:
            idx = self.rng.choice(live)
            scenario = scenarios[idx]
            wires.append(serialize_message(scenario.messages[cursors[idx]]))
            cursors[idx] += 1
            if cursors[idx] >= len(scenario.messages):
                live.remove(idx)
        return wires


def scenario_calls(seed: int, n_calls: int) -> list[str]:
    """Convenience: ``n_calls`` interleaved complete dialogs."""
    builder = _Builder(seed)
    return builder.weave([builder.call() for _ in range(n_calls)])


# ----------------------------------------------------------------------
# The eight evaluation test cases
# ----------------------------------------------------------------------


def evaluation_cases(*, seed: int = 2007) -> list[TestCase]:
    """T1-T8, deterministic in ``seed`` (default: the publication year)."""
    return [
        _t1(seed),
        _t2(seed),
        _t3(seed),
        _t4(seed),
        _t5(seed),
        _t6(seed),
        _t7(seed),
        _t8(seed),
    ]


def _t1(seed: int) -> TestCase:
    """Registration churn + first calls: broad handler coverage."""
    b = _Builder(seed ^ 0x51)
    scenarios = []
    for i, user in enumerate(_USERS[:6]):
        scenarios.append(b.register(f"sip:{user}@{_DOMAINS[i % 3]}", renew=i % 2 == 0))
    scenarios += [b.call(with_info=True) for _ in range(4)]
    scenarios += [b.options() for _ in range(2)]
    scenarios += [b.presence() for _ in range(2)]
    return TestCase(
        "T1",
        "registration-and-calls",
        "six registrations (half renewing), four calls with INFO, "
        "options pings and two presence dialogs",
        b.weave(scenarios),
    )


def _t2(seed: int) -> TestCase:
    """Pure call setup/teardown."""
    b = _Builder(seed ^ 0x52)
    scenarios = [b.call() for _ in range(6)]
    return TestCase(
        "T2",
        "call-setup",
        "six interleaved INVITE/ACK/BYE dialogs",
        b.weave(scenarios),
    )


def _t3(seed: int) -> TestCase:
    """Keep-alive and registration-refresh traffic: the smallest case."""
    b = _Builder(seed ^ 0x53)
    scenarios = [b.options() for _ in range(5)]
    scenarios += [b.register(renew=True) for _ in range(3)]
    scenarios += [b.call() for _ in range(2)]
    return TestCase(
        "T3",
        "keepalive-audit",
        "five OPTIONS pings, three renewing registrations and two calls",
        b.weave(scenarios),
    )


def _t4(seed: int) -> TestCase:
    """Mixed load."""
    b = _Builder(seed ^ 0x54)
    scenarios = [b.register(renew=True) for _ in range(4)]
    scenarios += [b.call(with_info=True) for _ in range(5)]
    scenarios += [b.presence() for _ in range(3)]
    scenarios += [b.options() for _ in range(2)]
    return TestCase(
        "T4",
        "mixed-load",
        "renewing registrations, five calls with INFO, presence and pings",
        b.weave(scenarios),
    )


def _t5(seed: int) -> TestCase:
    """Busy hour: highest volume, with INVITE retransmissions."""
    b = _Builder(seed ^ 0x55)
    scenarios = [b.register(renew=i % 3 == 0) for i in range(5)]
    scenarios += [b.call(retransmit=i % 2 == 0, with_info=True) for i in range(6)]
    scenarios += [b.presence() for _ in range(3)]
    return TestCase(
        "T5",
        "busy-hour",
        "heavy mixed load with INVITE retransmissions",
        b.weave(scenarios),
    )


def _t6(seed: int) -> TestCase:
    """Presence storm: subscription churn dominates."""
    b = _Builder(seed ^ 0x56)
    scenarios = [b.presence() for _ in range(7)]
    scenarios += [b.register(renew=True) for _ in range(4)]
    scenarios += [b.call() for _ in range(3)]
    return TestCase(
        "T6",
        "presence-storm",
        "seven subscriptions with notifies, renewing registrations, calls",
        b.weave(scenarios),
    )


def _t7(seed: int) -> TestCase:
    """Redial patterns: cancelled calls followed by successful ones."""
    b = _Builder(seed ^ 0x57)
    scenarios = []
    for _ in range(4):
        caller, callee = b._user(), b._user()
        scenarios.append(b.call(caller, callee, cancelled=True))
        scenarios.append(b.call(caller, callee))
    return TestCase(
        "T7",
        "redial",
        "four cancel-then-redial caller pairs",
        b.weave(scenarios),
    )


def _t8(seed: int) -> TestCase:
    """Maintenance window: registrations and audits, few calls."""
    b = _Builder(seed ^ 0x58)
    scenarios = [b.register(renew=i % 2 == 1) for i in range(5)]
    scenarios += [b.options() for _ in range(4)]
    scenarios += [b.call() for _ in range(2)]
    return TestCase(
        "T8",
        "maintenance",
        "registration refresh sweep with audits and two calls",
        b.weave(scenarios),
    )


# ----------------------------------------------------------------------
# The predictive test cases (latent bugs; see repro.sip.bugs)
# ----------------------------------------------------------------------


def predictive_cases(*, seed: int = 2007) -> list[TestCase]:
    """T9/T10: cases whose seeded bug never fires in any live run.

    Both pin their latent bug through :attr:`TestCase.bugs`, so running
    them under the legacy detector configurations produces clean
    reports — only the ``predictive`` profile's offline post-pass
    reports the fault.
    """
    return [_t9(seed), _t10(seed)]


def _t9(seed: int) -> TestCase:
    """Latent lock-order deadlock across a helper thread."""
    b = _Builder(seed ^ 0x59)
    scenarios = [b.register(renew=True) for _ in range(2)]
    scenarios += [b.options() for _ in range(2)]
    return TestCase(
        "T9",
        "latent-lock-order",
        "light maintenance traffic while the registrar audit and the "
        "domain refresher (via its helper thread) take the registrar "
        "and domain locks in opposite orders — paced so the deadlock "
        "never fires live",
        b.weave(scenarios),
        bugs=frozenset({"latent-lock-order"}),
    )


def _t10(seed: int) -> TestCase:
    """Latent unguarded warm-up write to a guarded statistics word."""
    b = _Builder(seed ^ 0x5A)
    scenarios = [b.options() for _ in range(3)]
    return TestCase(
        "T10",
        "latent-unguarded-write",
        "keep-alive pings while a warm-up thread stores a statistics "
        "probe word without the lock before a properly-locking reader "
        "polls it — the Eraser warm-up keeps every live run silent",
        b.weave(scenarios),
        bugs=frozenset({"latent-unguarded-write"}),
    )
