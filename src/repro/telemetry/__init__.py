"""Observability for the analysis pipeline: metrics, tracing, exporters.

The paper's contribution is *measurement* — instrumentation overhead
factors (§4.5), warning-count reductions per improvement (Figure 6),
memory-state distributions (Figure 5) — and this package makes the
reproduction's own pipeline measurable the same way:

* :mod:`~repro.telemetry.metrics` — counters, gauges, bucketed
  histograms, and a label-aware :class:`MetricsRegistry` with
  deterministic snapshots and cross-process merging.
* :mod:`~repro.telemetry.tracing` — span recording exported as Chrome
  ``chrome://tracing`` / Perfetto trace-event JSON.
* :mod:`~repro.telemetry.probe` — :class:`Telemetry`, the facade that
  attaches both to a :class:`~repro.runtime.vm.VM` (per-detector busy
  time per event batch, cache hit rates, the state-transition matrix).
* :mod:`~repro.telemetry.exporters` — Prometheus text exposition and
  JSON snapshot writers.
* :mod:`~repro.telemetry.schema` — structural snapshot validation
  (``python -m repro.telemetry.schema``), used by the CI smoke job.

Design rule: **near-zero overhead when disabled**.  Nothing here runs
on the VM's per-event fast path unless a :class:`Telemetry` object is
attached; the only integration point is route-build time
(:meth:`repro.runtime.vm.VM._build_routes`), which executes once per
event *type* per run.  See ``docs/OBSERVABILITY.md`` for the metric
catalogue and ``BENCH_telemetry.json`` for the measured overhead.
"""

from repro.telemetry.exporters import (
    prom_path_for,
    to_console,
    to_json,
    to_prometheus,
    write_metrics,
)
from repro.telemetry.logs import (
    LEVELS,
    NULL_LOGGER,
    FlightRecorder,
    StructuredLogger,
    dump_flight_spool,
    flight_spool_path,
    read_flight_records,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    SNAPSHOT_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.telemetry.probe import DETECTOR_BATCH_EVENTS, Telemetry
from repro.telemetry.tracing import VM_TRACK, Tracer, merge_chrome_traces

# NOTE: repro.telemetry.schema is deliberately NOT imported here — it is
# run as ``python -m repro.telemetry.schema`` by CI, and importing it
# from the package __init__ would trip runpy's found-in-sys.modules
# warning.  Import it explicitly: ``from repro.telemetry.schema import
# validate_snapshot``.

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DETECTOR_BATCH_EVENTS",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LEVELS",
    "MetricsRegistry",
    "NULL_LOGGER",
    "SNAPSHOT_VERSION",
    "StructuredLogger",
    "Telemetry",
    "Tracer",
    "VM_TRACK",
    "dump_flight_spool",
    "flight_spool_path",
    "merge_chrome_traces",
    "merge_snapshots",
    "prom_path_for",
    "read_flight_records",
    "to_console",
    "to_json",
    "to_prometheus",
    "write_metrics",
]
