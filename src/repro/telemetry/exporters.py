"""Snapshot exporters: Prometheus text exposition and JSON files.

Two machine-readable views of one :meth:`repro.telemetry.metrics
.MetricsRegistry.snapshot`:

* :func:`to_prometheus` — the text exposition format (``# HELP`` /
  ``# TYPE`` / samples), so a run's metrics can be diffed, scraped, or
  pushed to a gateway without any client library.  Histograms render in
  the cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count`` form.
* :func:`write_metrics` — the JSON snapshot (schema in
  :mod:`repro.telemetry.schema`) plus, alongside it, the Prometheus
  text under the same path with ``.prom`` appended, so one flag on the
  CLI produces both.

Output is deterministic: families alphabetical, samples sorted by label
items — equal registry states produce byte-equal files.
"""

from __future__ import annotations

import json
import math
import os

__all__ = [
    "to_prometheus",
    "to_json",
    "to_console",
    "write_metrics",
    "prom_path_for",
]


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_labels(labels: dict[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = [*sorted(labels.items()), *extra]
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(str(v))}"' for k, v in items)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _format_le(bound: float) -> str:
    return "+Inf" if bound == math.inf else _format_value(bound)


def to_prometheus(snapshot: dict) -> str:
    """Render a registry snapshot in the Prometheus text format."""
    lines: list[str] = []
    for name in sorted(snapshot["metrics"]):
        family = snapshot["metrics"][name]
        kind = family["type"]
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in family["samples"]:
            labels = sample.get("labels") or {}
            if kind == "histogram":
                running = 0
                bounds = list(sample["buckets"]) + [math.inf]
                for bound, count in zip(bounds, sample["counts"]):
                    running += count
                    le = _format_labels(labels, (("le", _format_le(bound)),))
                    lines.append(f"{name}_bucket{le} {running}")
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_format_labels(labels)} {sample['count']}"
                )
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} "
                    f"{_format_value(sample['value'])}"
                )
    return "\n".join(lines) + "\n"


def to_json(snapshot: dict) -> str:
    """The JSON snapshot document (deterministic key order)."""
    return json.dumps(snapshot, indent=1, sort_keys=True) + "\n"


def _samples(snapshot: dict, name: str) -> list[dict]:
    family = snapshot["metrics"].get(name)
    return family["samples"] if family else []


def _value(snapshot: dict, name: str, **labels) -> float:
    for sample in _samples(snapshot, name):
        if (sample.get("labels") or {}) == labels:
            return sample.get("value", 0.0)
    return 0.0


def _rate(hits: float, misses: float) -> str:
    total = hits + misses
    if total == 0:
        return "n/a"
    return f"{100.0 * hits / total:.1f}%"


def to_console(snapshot: dict) -> str:
    """Human-readable summary of a snapshot (the ``repro stats`` body).

    A curated view, not a dump: event mix, scheduler counters, all three
    cache hit rates, the interning tables, the Figure-5 shadow-state
    matrix, and per-detector busy time / warning counts.  Unknown or
    absent families are simply skipped, so the function works on partial
    snapshots (e.g. a metrics file produced by an older run).
    """
    out: list[str] = []
    metrics = snapshot.get("metrics", {})

    events = _samples(snapshot, "repro_events_total")
    if events:
        total = int(sum(s["value"] for s in events))
        out.append(f"events ({total} total)")
        for s in sorted(events, key=lambda s: -s["value"]):
            out.append(f"  {s['labels']['kind']:24s} {int(s['value']):>10d}")

    traps = _value(snapshot, "repro_vm_traps_total")
    if traps:
        out.append("vm")
        out.append(
            f"  traps {int(traps)}, switches "
            f"{int(_value(snapshot, 'repro_vm_switches_total'))}, threads "
            f"{int(_value(snapshot, 'repro_vm_threads_created_total'))} "
            f"(peak live {int(_value(snapshot, 'repro_vm_max_live_threads'))})"
        )

    out.append("caches")
    builds = _value(snapshot, "repro_vm_route_builds_total")
    route_hits = _value(snapshot, "repro_vm_route_cache_hits_total")
    out.append(
        f"  dispatch routes: {int(builds)} builds, {int(route_hits)} hits "
        f"({_rate(route_hits, builds)})"
    )
    bc_last = _value(snapshot, "repro_block_cache_hits_total", slot="last")
    bc_prev = _value(snapshot, "repro_block_cache_hits_total", slot="prev")
    bc_miss = _value(snapshot, "repro_block_cache_misses_total")
    out.append(
        f"  block lookup: {_rate(bc_last + bc_prev, bc_miss)} hit "
        f"(last {int(bc_last)}, prev {int(bc_prev)}, misses {int(bc_miss)})"
    )
    table = _value(snapshot, "repro_lockset_table_size")
    if table:
        ops = []
        for op in ("intern", "intersect", "with", "without"):
            h = _value(snapshot, "repro_lockset_memo_hits_total", op=op)
            m = _value(snapshot, "repro_lockset_memo_misses_total", op=op)
            if h or m:
                ops.append(f"{op} {_rate(h, m)}")
        out.append(
            f"  lock-set table: {int(table)} interned sets; memo: "
            + (", ".join(ops) if ops else "unused")
        )
    stacks = _value(snapshot, "repro_stack_intern_stacks")
    if stacks:
        out.append(
            f"  stack interning: {int(stacks)} stacks / "
            f"{int(_value(snapshot, 'repro_stack_intern_frames'))} frames, "
            f"{_rate(_value(snapshot, 'repro_stack_intern_hits_total'), _value(snapshot, 'repro_stack_intern_misses_total'))} hit"
        )
    tc_hits = sum(
        s["value"]
        for s in _samples(snapshot, "repro_transition_cache_hits_total")
    )
    tc_misses = sum(
        s["value"]
        for s in _samples(snapshot, "repro_transition_cache_misses_total")
    )
    if tc_hits or tc_misses:
        tc_evict = sum(
            s["value"]
            for s in _samples(snapshot, "repro_transition_cache_evictions_total")
        )
        elided = sum(
            s["value"] for s in _samples(snapshot, "repro_access_elided_total")
        )
        out.append(
            f"  transition cache: {_rate(tc_hits, tc_misses)} hit "
            f"({int(tc_hits)} hits, {int(tc_misses)} misses, "
            f"{int(tc_evict)} evictions); {int(elided)} accesses elided"
        )

    shadow = _samples(snapshot, "repro_shadow_words")
    if shadow:
        dist = ", ".join(
            f"{s['labels']['state']} {int(s['value'])}" for s in shadow
        )
        out.append(f"shadow memory: {dist}")
    transitions = _samples(snapshot, "repro_state_transitions_total")
    if transitions:
        out.append("state transitions (Figure 1/5)")
        for s in transitions:
            out.append(
                f"  {s['labels']['from']:>16s} -> {s['labels']['to']:16s} "
                f"{int(s['value']):>10d}"
            )

    det_events = _samples(snapshot, "repro_detector_events_total")
    if det_events:
        out.append("detectors")
        per_det: dict[str, tuple[float, float]] = {}
        for s in det_events:
            det = s["labels"]["detector"]
            busy = _value(
                snapshot,
                "repro_detector_busy_seconds_total",
                detector=det,
                kind=s["labels"]["kind"],
            )
            ev, b = per_det.get(det, (0.0, 0.0))
            per_det[det] = (ev + s["value"], b + busy)
        for det in sorted(per_det):
            ev, busy = per_det[det]
            out.append(f"  {det}: {int(ev)} events in {busy * 1e3:.1f} ms")
            for s in _samples(snapshot, "repro_detector_state"):
                if s["labels"]["detector"] == det:
                    out.append(
                        f"    {s['labels']['stat']} = {int(s['value'])}"
                    )
            for s in _samples(snapshot, "repro_warning_locations"):
                if s["labels"]["detector"] == det:
                    out.append(
                        f"    warnings[{s['labels']['kind']}] = {int(s['value'])} locations"
                    )
            # The predictive tier's offline pass (zeros elsewhere —
            # only shown when the detector actually predicted).
            edges = _value(snapshot, "repro_predict_edges_total", detector=det)
            cycles = _value(
                snapshot, "repro_predict_cycles_checked_total", detector=det
            )
            predictions = _value(
                snapshot, "repro_predict_predictions_total", detector=det
            )
            rejections = _value(
                snapshot,
                "repro_predict_feasibility_rejections_total",
                detector=det,
            )
            if edges or cycles or predictions or rejections:
                out.append(
                    f"    predictions: {int(predictions)} emitted "
                    f"({int(edges)} cross-thread edges, "
                    f"{int(cycles)} cycles checked, "
                    f"{int(rejections)} rejected infeasible)"
                )

    if "repro_phase_seconds_total" in metrics:
        out.append("phases")
        for s in _samples(snapshot, "repro_phase_seconds_total"):
            out.append(f"  {s['labels']['phase']:24s} {s['value'] * 1e3:9.1f} ms")

    return "\n".join(out) + "\n"


def prom_path_for(json_path: str) -> str:
    """Where :func:`write_metrics` puts the Prometheus twin of a JSON file."""
    return json_path + ".prom"


def _write_atomic(path: str, text: str) -> None:
    """Write-then-rename so a concurrent reader (a Prometheus scraper,
    ``repro stats`` on a shared file) never sees a torn file."""
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
    os.replace(tmp, path)


def write_metrics(path: str, snapshot: dict) -> str:
    """Write ``path`` (JSON snapshot) and ``path + '.prom'`` (text format).

    Both files are written atomically (temp file + ``os.replace``).
    Returns the Prometheus twin's path.
    """
    _write_atomic(path, to_json(snapshot))
    twin = prom_path_for(path)
    _write_atomic(twin, to_prometheus(snapshot))
    return twin
