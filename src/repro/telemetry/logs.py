"""Structured logging and the crash flight recorder.

The paper's detector ran inside long-lived SIP servers, where the
operators' first question is "what is the analysis doing right now and
why did it die".  This module answers both halves for the streaming
service (:mod:`repro.service`):

* :class:`StructuredLogger` — leveled JSON-lines records with
  correlation fields (``worker_id``, ``session_id``, ``pid``) bound
  once and stamped on every record, so one ``grep session=s0042`` (or
  a ``jq`` filter) reconstructs a session's life across the acceptor
  and its worker process.  Controlled by ``--log-level``/``--log-file``
  on ``repro serve``; a logger with neither a stream nor a ring sink is
  free (one attribute test per call).
* :class:`FlightRecorder` — a bounded ring of the last N records (log
  records *and* protocol frames).  Workers sync the ring to a small
  spool file next to their checkpoints; when a worker dies abnormally
  the supervisor renames the spool to ``flight-<worker>-<ts>.jsonl`` —
  a post-mortem of the victim's final moments that survives ``kill
  -9`` (which leaves no chance to flush anything at exit).

Record schema (one JSON object per line, keys in emission order)::

    {"ts": 1754650000.123456,   # unix seconds, 6 decimal places
     "level": "info",           # debug | info | warning | error
     "event": "session_open",   # machine-matchable event name
     "pid": 4711,               # emitting process
     "worker_id": "w1",         # bound correlation fields ...
     "session": "s0042",        # ... (present when bound/passed)
     ...}                       # free-form event fields

Everything here is dependency-free stdlib; records are written with one
``write`` call each so concurrent processes appending to a shared
``--log-file`` interleave at line granularity.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque

__all__ = [
    "LEVELS",
    "NULL_LOGGER",
    "StructuredLogger",
    "FlightRecorder",
    "flight_spool_path",
    "dump_flight_spool",
    "read_flight_records",
]

#: Level names in severity order; a logger at level L writes records
#: with severity >= L to its stream (the ring captures everything).
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class StructuredLogger:
    """Leveled JSON-lines logger with bound correlation fields.

    ``stream`` is any text file-like (or ``None`` for no stream
    output); ``ring`` is an optional :class:`FlightRecorder` that
    captures *every* record regardless of level, so the flight
    recorder's post-mortem is complete even when the operator runs at
    ``--log-level warning``.  :meth:`bind` derives children sharing the
    stream, lock and ring, with extra fields stamped on each record —
    the service binds ``worker_id`` once per process and ``session``
    per session.
    """

    __slots__ = ("_stream", "_threshold", "_fields", "_ring", "_lock", "level")

    def __init__(
        self,
        stream=None,
        *,
        level: str = "info",
        fields: dict | None = None,
        ring: "FlightRecorder | None" = None,
        _lock: threading.Lock | None = None,
    ) -> None:
        if level not in LEVELS:
            raise ValueError(
                f"unknown log level {level!r} (choose from {sorted(LEVELS)})"
            )
        self._stream = stream
        self.level = level
        self._threshold = LEVELS[level]
        self._fields = dict(fields or {})
        self._ring = ring
        self._lock = _lock if _lock is not None else threading.Lock()

    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether records go anywhere at all (stream or ring)."""
        return self._stream is not None or self._ring is not None

    def bind(self, **fields) -> "StructuredLogger":
        """A child logger stamping ``fields`` on every record (shares
        the stream, level, lock and ring with its parent)."""
        merged = dict(self._fields)
        merged.update(fields)
        return StructuredLogger(
            self._stream,
            level=self.level,
            fields=merged,
            ring=self._ring,
            _lock=self._lock,
        )

    def log(self, level: str, event: str, **fields) -> None:
        """Emit one record (no-op without a stream or ring sink)."""
        if self._stream is None and self._ring is None:
            return
        record = {
            "ts": round(time.time(), 6),
            "level": level,
            "event": event,
            "pid": os.getpid(),
        }
        record.update(self._fields)
        record.update(fields)
        if self._ring is not None:
            self._ring.record(record)
        if self._stream is not None and LEVELS.get(level, 0) >= self._threshold:
            line = json.dumps(record, separators=(",", ":"), default=str)
            with self._lock:
                try:
                    self._stream.write(line + "\n")
                    self._stream.flush()
                except (OSError, ValueError):
                    pass  # a torn log sink must never kill the service

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)


#: The shared disabled logger: every call is one attribute test.
NULL_LOGGER = StructuredLogger(None, ring=None)


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------

_SPOOL_SUFFIX = ".spool"


def flight_spool_path(directory: str | os.PathLike, worker_id: str) -> str:
    """The live spool file a worker keeps its ring synced to."""
    return os.path.join(os.fspath(directory), f"flight-{worker_id}{_SPOOL_SUFFIX}")


class FlightRecorder:
    """Bounded ring buffer of a process's last N observability records.

    Two producers feed it: the process's :class:`StructuredLogger`
    (every record, below-threshold ones included) and the service's
    frame reader (:meth:`frame` — one compact record per protocol
    frame).  With a ``spool_path`` the ring is rewritten atomically to
    disk whenever ``sync_every`` records accumulate — and, because a
    lightly-loaded worker may never reach that count before it is
    killed, a small daemon thread also syncs any dirty ring every
    ``sync_interval`` seconds.  After ``kill -9`` the spool therefore
    holds the victim's recent history at most ``sync_every`` records
    *or* ``sync_interval`` seconds stale, whichever bound bites first;
    the supervisor turns it into the post-mortem dump
    (:func:`dump_flight_spool`).  A clean shutdown deletes the spool —
    a surviving spool always means an abnormal exit.
    """

    def __init__(
        self,
        capacity: int = 256,
        *,
        spool_path: str | None = None,
        sync_every: int = 16,
        sync_interval: float = 0.25,
    ) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self.spool_path = spool_path
        self.sync_every = max(1, sync_every)
        self.sync_interval = sync_interval
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._since_sync = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        if spool_path is not None and sync_interval:
            t = threading.Thread(
                target=self._sync_loop, name="repro-flight-sync", daemon=True
            )
            t.start()

    def _sync_loop(self) -> None:
        while not self._stop.wait(self.sync_interval):
            with self._lock:
                dirty = self._since_sync > 0
            if dirty:
                self.sync()

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def record(self, record: dict) -> None:
        """Append one record; periodically sync the ring to the spool."""
        with self._lock:
            self._ring.append(record)
            self._since_sync += 1
            due = (
                self.spool_path is not None
                and self._since_sync >= self.sync_every
            )
        if due:
            self.sync()

    def frame(
        self,
        direction: str,
        frame_name: str,
        size: int,
        session: str | None = None,
    ) -> None:
        """Record one protocol frame (``direction`` is ``recv``/``send``)."""
        record = {
            "ts": round(time.time(), 6),
            "level": "debug",
            "event": "frame",
            "pid": os.getpid(),
            "dir": direction,
            "frame": frame_name,
            "bytes": size,
        }
        if session is not None:
            record["session"] = session
        self.record(record)

    def records(self) -> list[dict]:
        """The current ring contents, oldest first."""
        with self._lock:
            return list(self._ring)

    def sync(self) -> None:
        """Atomically rewrite the spool with the current ring (no-op
        without a ``spool_path``)."""
        if self.spool_path is None or self._stop.is_set():
            return
        with self._lock:
            lines = [
                json.dumps(r, separators=(",", ":"), default=str)
                for r in self._ring
            ]
            self._since_sync = 0
        tmp = self.spool_path + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write("\n".join(lines) + ("\n" if lines else ""))
            os.replace(tmp, self.spool_path)
        except OSError:
            pass  # a full/readonly disk must not take the worker down

    def close(self, *, delete: bool = False) -> None:
        """Final sync — or, on a clean shutdown, remove the spool so no
        stale post-mortem outlives a healthy exit."""
        if self.spool_path is None:
            self._stop.set()
            return
        if delete:
            # Stop the sync thread *first* so a concurrent sync cannot
            # resurrect the spool after the unlink (sync() checks the
            # stop flag before writing).
            self._stop.set()
            for path in (self.spool_path, self.spool_path + ".tmp"):
                try:
                    os.unlink(path)
                except OSError:
                    pass
        else:
            self.sync()
            self._stop.set()


def read_flight_records(path: str | os.PathLike) -> list[dict]:
    """Parse a spool or dump file, skipping any torn trailing line."""
    records: list[dict] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    continue  # torn tail from a mid-write crash
    except OSError:
        pass
    return records


def dump_flight_spool(
    directory: str | os.PathLike,
    worker_id: str,
    *,
    timestamp: int | None = None,
) -> str | None:
    """Turn a dead worker's spool into its post-mortem dump.

    Renames ``flight-<worker>.spool`` in ``directory`` to
    ``flight-<worker>-<ts>.jsonl`` (suffixed ``-2``, ``-3``, … if that
    name is somehow taken) and returns the dump path, or ``None`` when
    there is no spool — i.e. the worker exited cleanly, or never wrote
    one.  Called by the sharded supervisor before it spawns the
    replacement, so the fresh worker starts a fresh spool.
    """
    spool = flight_spool_path(directory, worker_id)
    if not os.path.exists(spool):
        return None
    ts = int(time.time()) if timestamp is None else int(timestamp)
    base = os.path.join(os.fspath(directory), f"flight-{worker_id}-{ts}")
    dump = base + ".jsonl"
    n = 1
    while os.path.exists(dump):
        n += 1
        dump = f"{base}-{n}.jsonl"
    try:
        os.replace(spool, dump)
    except OSError:
        return None
    return dump
