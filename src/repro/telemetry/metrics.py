"""The metrics model: counters, gauges, histograms, and their registry.

The paper's evaluation is *measurement* — warning counts per
configuration (Figure 6), state distributions (Figure 5), slowdown
factors (§4.5) — and PR 1's fast path added several caches whose
effectiveness was previously invisible (the interned
:class:`~repro.detectors.lockset.LocksetTable`, the VM's per-type route
cache, the address-space block-lookup cache, ExeContext-style stack
interning).  This module gives all of them one vocabulary:

* :class:`Counter` — a monotonically increasing total (events seen,
  cache hits, warnings raised).  Merging sums.
* :class:`Gauge` — a point-in-time value (table sizes, tracked shadow
  words).  Merging takes the maximum by default (the natural semantics
  when combining per-worker snapshots of process-local tables), but a
  gauge can opt into ``sum`` or ``last``.
* :class:`Histogram` — bucketed observations with ``sum`` and ``count``
  (per-batch detector latencies).  Merging adds bucket-wise.

A :class:`MetricsRegistry` holds metric *families* addressed by name +
label set, exactly like the Prometheus data model, and produces a plain-
``dict`` :meth:`~MetricsRegistry.snapshot` that is

* **deterministic** — families and samples are emitted in sorted order,
  so equal states serialise to equal JSON bytes,
* **serialisable** — only builtins, so it crosses process boundaries
  (the parallel Figure-6 harness pickles worker snapshots back to the
  parent), and
* **mergeable** — :meth:`~MetricsRegistry.merge_snapshot` folds a
  snapshot from another registry (typically another process) into this
  one.

Nothing in this module is wired to the runtime; the weaving lives in
:mod:`repro.telemetry.probe`.
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "SNAPSHOT_VERSION",
    "merge_snapshots",
]

#: Version tag stamped into every snapshot (bump on breaking layout
#: changes; the schema validator checks it).
SNAPSHOT_VERSION = 1

#: Default histogram buckets, in seconds — spans per-event handler
#: batches (microseconds) up to whole experiment phases (seconds).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0, 5.0, 10.0,
)


def _label_key(labels: dict[str, str] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing float/int total."""

    __slots__ = ("value",)

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def _sample(self) -> dict:
        return {"value": self.value}

    def _merge(self, sample: dict) -> None:
        self.value += sample["value"]


class Gauge:
    """A point-in-time value with selectable merge semantics."""

    __slots__ = ("value", "merge_mode")

    kind = "gauge"

    def __init__(self, merge_mode: str = "max") -> None:
        if merge_mode not in ("max", "sum", "last"):
            raise ValueError(f"unknown gauge merge mode {merge_mode!r}")
        self.value = 0.0
        self.merge_mode = merge_mode

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def _sample(self) -> dict:
        # The merge mode travels with the sample so that a registry
        # reconstructed from snapshots (the parallel-harness parent)
        # merges worker gauges with the semantics the instrumentation
        # site declared, not the default.
        return {"value": self.value, "merge": self.merge_mode}

    def _merge(self, sample: dict) -> None:
        other = sample["value"]
        if self.merge_mode == "sum":
            self.value += other
        elif self.merge_mode == "last":
            self.value = other
        else:
            self.value = max(self.value, other)


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket always
    exists.  ``observe`` is O(log buckets) (bisect into the sorted
    bounds); the exported form stores *per-bucket* counts and the
    exporter re-accumulates into the cumulative ``le`` form, which keeps
    merging trivial (bucket-wise addition).
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    kind = "histogram"

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        #: counts[i] observations fell in (bounds[i-1], bounds[i]];
        #: counts[-1] is the +Inf overflow bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative count)`` pairs, ``le=inf`` last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def _sample(self) -> dict:
        return {
            "buckets": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def _merge(self, sample: dict) -> None:
        if list(self.bounds) != list(sample["buckets"]):
            raise ValueError(
                "cannot merge histograms with different bucket bounds"
            )
        for i, n in enumerate(sample["counts"]):
            self.counts[i] += n
        self.sum += sample["sum"]
        self.count += sample["count"]


class _Family:
    """One metric family: a name, help text, and per-label-set children."""

    __slots__ = ("name", "help", "kind", "children", "_factory")

    def __init__(self, name: str, help_text: str, kind: str, factory) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self.children: dict[tuple, object] = {}
        self._factory = factory

    def child(self, labels: dict[str, str] | None):
        key = _label_key(labels)
        metric = self.children.get(key)
        if metric is None:
            metric = self._factory()
            self.children[key] = metric
        return metric


_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


class MetricsRegistry:
    """A process-local collection of metric families.

    All accessors are *upsert* style — ``registry.counter(name)`` returns
    the existing child or creates it — so instrumentation sites never
    need registration boilerplate.  Families are type-stable: asking for
    an existing name with a different kind raises.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def counter(
        self, name: str, labels: dict[str, str] | None = None, help: str = ""
    ) -> Counter:
        return self._get(name, "counter", labels, help, Counter)

    def gauge(
        self,
        name: str,
        labels: dict[str, str] | None = None,
        help: str = "",
        merge: str = "max",
    ) -> Gauge:
        return self._get(name, "gauge", labels, help, lambda: Gauge(merge))

    def histogram(
        self,
        name: str,
        labels: dict[str, str] | None = None,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(name, "histogram", labels, help, lambda: Histogram(buckets))

    def _get(self, name, kind, labels, help_text, factory):
        family = self._families.get(name)
        if family is None:
            if not name or not set(name) <= _NAME_OK or name[0].isdigit():
                raise ValueError(f"invalid metric name {name!r}")
            family = _Family(name, help_text, kind, factory)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, "
                f"requested {kind}"
            )
        return family.child(labels)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def families(self) -> list[str]:
        return sorted(self._families)

    def get(self, name: str, labels: dict[str, str] | None = None):
        """The child metric, or ``None`` if name/labels were never used."""
        family = self._families.get(name)
        if family is None:
            return None
        return family.children.get(_label_key(labels))

    def value(self, name: str, labels: dict[str, str] | None = None) -> float:
        """Convenience: the scalar value of a counter/gauge (0.0 if absent)."""
        metric = self.get(name, labels)
        if metric is None:
            return 0.0
        return metric.value  # type: ignore[union-attr]

    # ------------------------------------------------------------------
    # Snapshot / merge
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Deterministic plain-dict view of every family and sample."""
        metrics: dict[str, dict] = {}
        for name in sorted(self._families):
            family = self._families[name]
            samples = []
            for key in sorted(family.children):
                metric = family.children[key]
                sample = {"labels": dict(key)}
                sample.update(metric._sample())  # type: ignore[attr-defined]
                samples.append(sample)
            metrics[name] = {
                "type": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return {"version": SNAPSHOT_VERSION, "metrics": metrics}

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (from any process) into this registry.

        Counters and histograms add; gauges follow their merge mode,
        which each gauge sample carries with it (``"merge"`` key; a
        gauge created *by* the merge adopts the incoming sample's mode).
        """
        version = snapshot.get("version")
        if version != SNAPSHOT_VERSION:
            raise ValueError(
                f"cannot merge snapshot version {version!r} "
                f"(expected {SNAPSHOT_VERSION})"
            )
        for name, family_data in snapshot["metrics"].items():
            kind = family_data["type"]
            for sample in family_data["samples"]:
                labels = sample.get("labels") or None
                if kind == "counter":
                    self.counter(name, labels, family_data.get("help", ""))._merge(
                        sample
                    )
                elif kind == "gauge":
                    self.gauge(
                        name,
                        labels,
                        family_data.get("help", ""),
                        merge=sample.get("merge", "max"),
                    )._merge(sample)
                elif kind == "histogram":
                    metric = self.histogram(
                        name,
                        labels,
                        family_data.get("help", ""),
                        buckets=tuple(sample["buckets"]),
                    )
                    metric._merge(sample)
                else:
                    raise ValueError(f"unknown metric type {kind!r} in snapshot")


def merge_snapshots(snapshots) -> dict:
    """Fold any number of :meth:`MetricsRegistry.snapshot` dicts into
    one merged snapshot.

    The aggregation every multi-process consumer needs — the parallel
    figure6 harness, and the sharded analysis service's acceptor
    answering ``repro client stat`` with one view over N worker
    processes.  Counters and histograms add; gauges follow the merge
    mode stamped on each sample.
    """
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge_snapshot(snapshot)
    return merged.snapshot()
