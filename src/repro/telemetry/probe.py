"""The weave layer: attaching metrics and tracing to a VM run.

:class:`Telemetry` is the one object the rest of the codebase talks to.
It owns a :class:`~repro.telemetry.metrics.MetricsRegistry` and (when
tracing is on) a :class:`~repro.telemetry.tracing.Tracer`, and plugs
into the runtime at exactly one point: the VM's route builder
(:meth:`repro.runtime.vm.VM._build_routes`) calls
:meth:`wrap_handler` for every ``(detector, event type)`` route it
resolves.  Because routes are built once per event type per run, the
disabled case costs *nothing* on the per-event path — the VM hot loop
is byte-for-byte the PR-1 fast path unless a telemetry object is
actually attached (the ``BENCH_telemetry.json`` acceptance gate).

When enabled, each routed handler is wrapped in a timing closure that

* accumulates busy seconds and call counts per ``(detector, event
  kind)`` — the §4.5 "analysis multiple" decomposed by detector and by
  event type, and
* groups calls into *batches* (default 1024 events): each full batch
  emits one span on the detector's trace track and one observation in
  the per-detector batch-latency histogram, so the Chrome timeline
  shows detector busy time against the VM run without recording a span
  per event.

:meth:`record_run` is called once after ``vm.run(...)`` returns; it
harvests everything that is cheap to read but pointless to sample
per-event: the VM's event tally and scheduler counters, the route-cache
and block-lookup-cache hit rates, the process-wide interning tables
(lock-sets, call stacks), the shadow-memory state-transition matrix and
final state distribution, and per-detector warning counts.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import VM_TRACK, Tracer

__all__ = ["Telemetry", "DETECTOR_BATCH_EVENTS"]

#: Handler invocations per trace span / histogram observation.
DETECTOR_BATCH_EVENTS = 1024

#: Buckets for per-batch detector busy time (seconds).  A 1024-event
#: batch at the measured ~250k events/s spends a few ms in a detector.
_BATCH_BUCKETS = (1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0)


def _read_process_tables() -> dict[str, int]:
    """Flat view of the process-global interning tables' counters."""
    from repro.detectors.lockset import LOCKSETS
    from repro.runtime.events import intern_stats

    ls = LOCKSETS.stats()
    si = intern_stats()
    out = {"lockset_size": ls["size"]}
    for op in ("intern", "intersect", "with", "without"):
        out[f"lockset_{op}_hits"] = ls[f"{op}_hits"]
        out[f"lockset_{op}_misses"] = ls[f"{op}_misses"]
    out["stack_stacks"] = si["stacks"]
    out["stack_frames"] = si["frames"]
    out["stack_hits"] = si["stack_hits"]
    out["stack_misses"] = si["stack_misses"]
    return out


class _DetectorProbe:
    """Per-detector batch accumulator feeding the tracer/histogram."""

    __slots__ = ("name", "track", "busy", "calls", "batch_start")

    def __init__(self, name: str, track: int) -> None:
        self.name = name
        self.track = track
        self.busy = 0.0
        self.calls = 0
        self.batch_start: float | None = None


class Telemetry:
    """Metrics + tracing for one logical run (or a merged sweep).

    Parameters
    ----------
    enabled:
        ``False`` makes every method a no-op returning its input —
        callers can thread one object through unconditionally.
    trace:
        Collect Chrome trace events (``--trace-out``).
    batch_events:
        Handler calls per detector batch span.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        trace: bool = False,
        batch_events: int = DETECTOR_BATCH_EVENTS,
    ) -> None:
        self.enabled = enabled
        self.registry = MetricsRegistry()
        self.tracer = Tracer() if (enabled and trace) else None
        self.batch_events = batch_events
        self._t0 = time.perf_counter()
        #: Process-global table tallies (lock-set memo, stack interning)
        #: at construction time.  :meth:`record_run` reports *deltas*
        #: against this baseline, so (a) a warm process doesn't leak
        #: earlier runs' work into this telemetry object, and (b) the
        #: parallel harness — one fresh Telemetry per worker cell, with
        #: the worker process's tables persisting across cells — sums
        #: per-cell deltas to the true process totals instead of
        #: double-counting the shared cumulative tallies.
        self._table_baseline = _read_process_tables() if enabled else {}
        #: id(hook) -> probe; id() keys avoid requiring hashable hooks.
        self._probes: dict[int, _DetectorProbe] = {}
        self._names_taken: set[str] = set()
        #: (detector name, event kind) -> [busy_seconds, calls].
        self._cells: dict[tuple[str, str], list] = {}
        #: [seconds, calls] accumulators for wrapped ``VM.emit``.
        self._emit_cells: list[list] = []

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    def now(self) -> float:
        if self.tracer is not None:
            return self.tracer.now()
        return time.perf_counter() - self._t0

    # ------------------------------------------------------------------
    # VM attachment
    # ------------------------------------------------------------------

    def attach(self, vm, *, time_emit: bool = False):
        """Wire this telemetry into ``vm`` (before :meth:`VM.run`).

        Sets the VM's telemetry pointer (so route building wraps
        handlers), turns on shadow-memory transition tracking for any
        hook exposing a lock-set machine, and — in breakdown mode —
        wraps ``vm.emit`` itself so dispatch time (emit minus detector
        busy) is measurable.  Returns ``vm`` for chaining.
        """
        if not self.enabled:
            return vm
        vm._telemetry = self
        # Name this VM's hooks now, deduplicating only *within* the VM:
        # a sweep that builds a fresh HelgrindDetector per cell must
        # aggregate them all under one "helgrind" series, while two
        # detectors of the same type on one VM still get distinct names.
        seen: dict[str, int] = {}
        for hook in vm._hooks:
            base = getattr(hook, "telemetry_name", type(hook).__name__)
            nth = seen.get(base, 0)
            seen[base] = nth + 1
            if id(hook) not in self._probes:
                self._register_probe(hook, base if nth == 0 else f"{base}#{nth + 1}")
        for hook in vm._hooks:
            machine = getattr(hook, "machine", None)
            if machine is not None and hasattr(
                machine, "enable_transition_tracking"
            ):
                machine.enable_transition_tracking()
        if time_emit:
            cell = [0.0, 0]
            self._emit_cells.append(cell)
            orig = vm.emit
            pc = time.perf_counter

            def timed_emit(event, _orig=orig, _cell=cell, _pc=pc):
                t0 = _pc()
                _orig(event)
                _cell[0] += _pc() - t0
                _cell[1] += 1

            vm.emit = timed_emit
        return vm

    def wrap_handler(self, hook, event_type: type, fn):
        """Wrap one routed handler in the timing closure (VM callback).

        Called by :meth:`repro.runtime.vm.VM._build_routes` once per
        ``(hook, event type)`` — never on the per-event path.
        """
        if not self.enabled or fn is None:
            return fn
        name = self._detector_name(hook)
        cell = self._cells.setdefault((name, event_type.__name__), [0.0, 0])
        probe = self._probe_for(hook)
        pc = time.perf_counter
        batch = self.batch_events
        flush = self._flush_batch

        def timed(event, vm, _fn=fn, _cell=cell, _p=probe, _pc=pc):
            if _p.batch_start is None:
                _p.batch_start = self.now()
            t0 = _pc()
            _fn(event, vm)
            dt = _pc() - t0
            _cell[0] += dt
            _cell[1] += 1
            _p.busy += dt
            _p.calls += 1
            if _p.calls >= batch:
                flush(_p)

        return timed

    # ------------------------------------------------------------------
    # Phases (harness / CLI level spans)
    # ------------------------------------------------------------------

    @contextmanager
    def phase(self, name: str, **args):
        """Span + ``repro_phase_seconds_total{phase=...}`` around a block."""
        if not self.enabled:
            yield self
            return
        start = self.now()
        try:
            yield self
        finally:
            duration = self.now() - start
            self.registry.counter(
                "repro_phase_seconds_total",
                {"phase": name},
                help="Wall-clock seconds spent per harness phase.",
            ).inc(duration)
            if self.tracer is not None:
                self.tracer.complete(
                    name,
                    start=start,
                    duration=duration,
                    track=VM_TRACK,
                    category="phase",
                    args=args or None,
                )

    # ------------------------------------------------------------------
    # Harvest
    # ------------------------------------------------------------------

    def record_run(self, vm, *, label: str = "run") -> None:
        """Harvest one finished VM run into the registry.

        Safe to call once per VM; process-wide tables (lock-sets, stack
        interning) are re-*set* as gauges, per-run tallies are *added*
        as counters.
        """
        if not self.enabled:
            return
        self.flush()
        reg = self.registry
        stats = vm.stats

        # -- event counts by kind (the VM's own tally, so the numbers
        #    match even for event types no detector subscribed to).
        for kind, count in sorted(stats.events.items()):
            reg.counter(
                "repro_events_total",
                {"kind": kind},
                help="Events emitted by the VM, by event kind.",
            ).inc(count)
        reg.counter(
            "repro_vm_traps_total", help="Scheduling opportunities taken."
        ).inc(stats.traps)
        reg.counter(
            "repro_vm_switches_total", help="Actual carrier hand-offs."
        ).inc(stats.switches)
        reg.counter(
            "repro_vm_threads_created_total", help="Guest threads created."
        ).inc(stats.threads_created)
        reg.gauge(
            "repro_vm_max_live_threads",
            help="Peak simultaneously-live guest threads.",
        ).set(
            max(
                reg.value("repro_vm_max_live_threads"),
                stats.max_live_threads,
            )
        )

        # -- dispatch route cache: one miss per distinct event type.
        builds = len(vm._dispatch)
        reg.counter(
            "repro_vm_route_builds_total",
            help="Route-table builds (one per event type per run).",
        ).inc(builds)
        reg.counter(
            "repro_vm_route_cache_hits_total",
            help="Events dispatched through an already-built route.",
        ).inc(max(0, stats.total_events - builds))

        # -- block-lookup cache (per-VM address space).
        cache = vm.memory.cache_stats()
        for slot in ("last", "prev"):
            reg.counter(
                "repro_block_cache_hits_total",
                {"slot": slot},
                help="check_access hits in the two-entry block cache.",
            ).inc(cache[f"hits_{slot}"])
        reg.counter(
            "repro_block_cache_misses_total",
            help="check_access falls back to bisect lookup.",
        ).inc(cache["misses"])

        # -- process-wide interning tables (gauges: point-in-time).
        self._record_process_tables()

        # -- per-detector state.
        for hook in vm._hooks:
            self._record_detector(hook)

        reg.counter("repro_runs_total", help="VM runs recorded.").inc(1)
        if self.tracer is not None:
            self.tracer.instant(
                "run-recorded", args={"label": label, "events": stats.total_events}
            )

    def _record_process_tables(self) -> None:
        reg = self.registry
        tables = _read_process_tables()
        base = self._table_baseline

        def delta(key: str) -> float:
            return tables[key] - base.get(key, 0)

        # Sizes are absolute (merge=max: independent worker processes
        # each grow their own table); tallies are deltas against the
        # construction-time baseline (merge=sum: work adds up).
        reg.gauge(
            "repro_lockset_table_size",
            help="Distinct lock-sets interned (process-wide, max on merge).",
        ).set(tables["lockset_size"])
        for op in ("intern", "intersect", "with", "without"):
            reg.gauge(
                "repro_lockset_memo_hits_total",
                {"op": op},
                help="LocksetTable memo hits by operation (sum on merge).",
                merge="sum",
            ).set(delta(f"lockset_{op}_hits"))
            reg.gauge(
                "repro_lockset_memo_misses_total",
                {"op": op},
                help="LocksetTable memo misses by operation (sum on merge).",
                merge="sum",
            ).set(delta(f"lockset_{op}_misses"))

        reg.gauge(
            "repro_stack_intern_stacks",
            help="Distinct call stacks interned (ExeContext table).",
        ).set(tables["stack_stacks"])
        reg.gauge(
            "repro_stack_intern_frames", help="Distinct frames interned."
        ).set(tables["stack_frames"])
        reg.gauge(
            "repro_stack_intern_hits_total",
            help="intern_stack served from the table (sum on merge).",
            merge="sum",
        ).set(delta("stack_hits"))
        reg.gauge(
            "repro_stack_intern_misses_total",
            help="intern_stack had to intern a new stack (sum on merge).",
            merge="sum",
        ).set(delta("stack_misses"))

    def _record_detector(self, hook) -> None:
        reg = self.registry
        name = self._detector_name(hook)

        # Shadow-memory machine (lock-set detectors): Figure-5 material.
        machine = getattr(hook, "machine", None)
        if machine is not None:
            transitions = getattr(machine, "transition_counts", None)
            if transitions:
                for (src, dst), count in sorted(
                    transitions.items(), key=lambda kv: (kv[0][0].value, kv[0][1].value)
                ):
                    reg.counter(
                        "repro_state_transitions_total",
                        {"from": src.value, "to": dst.value},
                        help="Shadow-word state transitions (Figure 1 machine).",
                    ).inc(count)
            if hasattr(machine, "state_distribution"):
                for state, count in sorted(
                    machine.state_distribution().items(), key=lambda kv: kv[0].value
                ):
                    reg.gauge(
                        "repro_shadow_words",
                        {"state": state.value},
                        help="Tracked shadow words by final state (sum on merge).",
                        merge="sum",
                    ).inc(count)
            # Paged-engine counters: copy-on-write page materialisations
            # and O(pages) range transitions (alloc/free/HG_DESTRUCT).
            shadow = getattr(machine, "shadow_stats", None)
            if shadow is not None:
                for stat, value in sorted(shadow().items()):
                    reg.gauge(
                        "repro_shadow_engine",
                        {"stat": stat},
                        help="Paged shadow-memory engine counters (sum on merge).",
                        merge="sum",
                    ).inc(float(value))
            # Transition-memo counters (always emitted so the families
            # validate even on cache-disabled runs — values just stay 0).
            cache = getattr(machine, "transition_cache_stats", None)
            if cache is not None:
                stats = cache()
                reg.counter(
                    "repro_transition_cache_hits_total",
                    {"detector": name},
                    help="access_check SHARED steps answered from the memo.",
                ).inc(stats["hits"])
                reg.counter(
                    "repro_transition_cache_misses_total",
                    {"detector": name},
                    help="access_check SHARED steps that computed + memoized.",
                ).inc(stats["misses"])
                reg.counter(
                    "repro_transition_cache_evictions_total",
                    {"detector": name},
                    help="Whole-table memo clears on reaching the size cap.",
                ).inc(stats["evictions"])

        # Same-access elision (Helgrind-style redundant-access filter).
        elided = getattr(hook, "_elided", None)
        if elided is not None:
            reg.counter(
                "repro_access_elided_total",
                {"detector": name},
                help="Accesses absorbed by the one-entry same-access filter.",
            ).inc(elided)

        # Predictive-tier counters.  Every detector answers
        # predict_stats() (the base implementation returns zeros), so
        # the families are always present and schema-validatable;
        # non-zero values only appear under the predictive profile.
        predict = getattr(hook, "predict_stats", None)
        if predict is not None:
            stats = predict()
            reg.counter(
                "repro_predict_edges_total",
                {"detector": name},
                help="Cross-thread lock-graph edges recorded for prediction.",
            ).inc(stats["edges"])
            reg.counter(
                "repro_predict_cycles_checked_total",
                {"detector": name},
                help="Candidate lock-order cycles examined for feasibility.",
            ).inc(stats["cycles_checked"])
            reg.counter(
                "repro_predict_predictions_total",
                {"detector": name},
                help="Predicted findings (races + deadlocks) emitted.",
            ).inc(stats["predictions"])
            reg.counter(
                "repro_predict_feasibility_rejections_total",
                {"detector": name},
                help="Candidate predictions discarded by the feasibility gate.",
            ).inc(stats["feasibility_rejections"])

        # Detector-specific summary gauges (each detector contributes
        # its own vocabulary through telemetry_summary()).
        summary = getattr(hook, "telemetry_summary", None)
        if summary is not None:
            for key, value in sorted(summary().items()):
                reg.gauge(
                    "repro_detector_state",
                    {"detector": name, "stat": key},
                    help="Detector-declared state metrics (sum on merge).",
                    merge="sum",
                ).inc(float(value))

        # Warnings (any hook exposing a Report).
        report = getattr(hook, "report", None)
        if report is not None and hasattr(report, "warnings"):
            by_kind: dict[str, int] = {}
            for warning in report.warnings:
                by_kind[warning.kind] = by_kind.get(warning.kind, 0) + 1
            for kind, count in sorted(by_kind.items()):
                reg.gauge(
                    "repro_warning_locations",
                    {"detector": name, "kind": kind},
                    help="Distinct reported locations (the Figure-6 metric).",
                    merge="sum",
                ).inc(count)
            reg.counter(
                "repro_warnings_dynamic_total",
                {"detector": name},
                help="Dynamic (non-suppressed) warning occurrences.",
            ).inc(report.dynamic_count)
            suppressed = getattr(report, "suppressed_count", 0)
            if suppressed:
                reg.counter(
                    "repro_warnings_suppressed_total",
                    {"detector": name},
                    help="Warnings filtered by suppression files.",
                ).inc(suppressed)

    # ------------------------------------------------------------------
    # Flush / snapshot
    # ------------------------------------------------------------------

    def flush(self) -> None:
        """Drain accumulator cells into the registry (idempotent)."""
        if not self.enabled:
            return
        reg = self.registry
        for (det, kind), cell in self._cells.items():
            busy, calls = cell
            if calls:
                reg.counter(
                    "repro_detector_events_total",
                    {"detector": det, "kind": kind},
                    help="Events routed into each detector, by kind.",
                ).inc(calls)
                reg.counter(
                    "repro_detector_busy_seconds_total",
                    {"detector": det, "kind": kind},
                    help="Wall-clock seconds inside detector handlers.",
                ).inc(busy)
                cell[0] = 0.0
                cell[1] = 0
        for probe in self._probes.values():
            if probe.calls:
                self._flush_batch(probe)
        for cell in self._emit_cells:
            seconds, calls = cell
            if calls:
                reg.counter(
                    "repro_emit_seconds_total",
                    help="Seconds inside VM.emit (dispatch + detectors).",
                ).inc(seconds)
                reg.counter(
                    "repro_emit_calls_total", help="VM.emit invocations timed."
                ).inc(calls)
                cell[0] = 0.0
                cell[1] = 0

    def _flush_batch(self, probe: _DetectorProbe) -> None:
        self.registry.histogram(
            "repro_detector_batch_busy_seconds",
            {"detector": probe.name},
            help=(
                f"Detector busy seconds per {self.batch_events}-event batch."
            ),
            buckets=_BATCH_BUCKETS,
        ).observe(probe.busy)
        if self.tracer is not None and probe.batch_start is not None:
            self.tracer.complete(
                f"{probe.name} ×{probe.calls}",
                start=probe.batch_start,
                duration=probe.busy,
                track=probe.track,
                category="detector",
                args={"events": probe.calls, "busy_s": round(probe.busy, 6)},
            )
        probe.busy = 0.0
        probe.calls = 0
        probe.batch_start = None

    def snapshot(self) -> dict:
        """Flush accumulators and return the registry snapshot."""
        self.flush()
        return self.registry.snapshot()

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a worker-process snapshot into this registry."""
        if self.enabled:
            self.registry.merge_snapshot(snapshot)

    # ------------------------------------------------------------------
    # Convenience readers (used by the performance breakdown)
    # ------------------------------------------------------------------

    def detector_busy_seconds(self) -> float:
        """Total seconds spent inside detector handlers so far."""
        self.flush()
        fam = self.registry._families.get("repro_detector_busy_seconds_total")
        if fam is None:
            return 0.0
        return sum(m.value for m in fam.children.values())

    def emit_seconds(self) -> float:
        """Total seconds inside ``VM.emit`` (requires ``time_emit``)."""
        self.flush()
        return self.registry.value("repro_emit_seconds_total")

    # ------------------------------------------------------------------

    def _detector_name(self, hook) -> str:
        probe = self._probes.get(id(hook))
        if probe is not None:
            return probe.name
        # Fallback for hooks not pre-registered via :meth:`attach` (a VM
        # constructed with ``telemetry=`` but never attached): reuse the
        # base name — aggregation by detector kind is the useful default.
        return self._register_probe(
            hook, getattr(hook, "telemetry_name", type(hook).__name__)
        ).name

    def _register_probe(self, hook, name: str) -> _DetectorProbe:
        self._names_taken.add(name)
        track = self.tracer.track(name) if self.tracer is not None else 0
        probe = _DetectorProbe(name, track)
        self._probes[id(hook)] = probe
        return probe

    def _probe_for(self, hook) -> _DetectorProbe:
        self._detector_name(hook)  # ensures the probe exists
        return self._probes[id(hook)]
