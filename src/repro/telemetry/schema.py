"""Structural validation of metrics-snapshot JSON documents.

CI runs ``repro report --metrics-out m.json`` and then::

    python -m repro.telemetry.schema m.json

to catch layout drift without adding a ``jsonschema`` dependency (the
container and the CI image only carry the pytest toolchain).  The
checks are deliberately structural — names, types, label shapes,
histogram invariants — not value assertions; value-level expectations
live in ``tests/telemetry/``.

:func:`validate_snapshot` returns a list of human-readable problems
(empty = valid) so tests can assert on specific failures.
"""

from __future__ import annotations

import json
import sys

from repro.telemetry.metrics import SNAPSHOT_VERSION

__all__ = ["validate_snapshot", "main"]

_VALID_TYPES = ("counter", "gauge", "histogram")

#: Metric families the pipeline always emits for an instrumented run
#: (the CI smoke job asserts their presence on top of structure).
REQUIRED_FAMILIES = (
    "repro_events_total",
    "repro_vm_route_builds_total",
    "repro_block_cache_hits_total",
    "repro_lockset_table_size",
    "repro_detector_events_total",
    "repro_detector_busy_seconds_total",
    "repro_shadow_engine",
    "repro_transition_cache_hits_total",
    "repro_transition_cache_misses_total",
    "repro_transition_cache_evictions_total",
    "repro_access_elided_total",
    "repro_predict_edges_total",
    "repro_predict_cycles_checked_total",
    "repro_predict_predictions_total",
    "repro_predict_feasibility_rejections_total",
)


def _check_sample(name: str, kind: str, sample: object, problems: list[str]) -> None:
    where = f"{name}: sample {sample!r}"
    if not isinstance(sample, dict):
        problems.append(f"{where}: not an object")
        return
    labels = sample.get("labels", {})
    if not isinstance(labels, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in labels.items()
    ):
        problems.append(f"{name}: labels must be a string->string object")
    if kind == "histogram":
        for key in ("buckets", "counts", "sum", "count"):
            if key not in sample:
                problems.append(f"{name}: histogram sample missing {key!r}")
                return
        buckets, counts = sample["buckets"], sample["counts"]
        if not isinstance(buckets, list) or not all(
            isinstance(b, (int, float)) for b in buckets
        ):
            problems.append(f"{name}: buckets must be a list of numbers")
            return
        if sorted(buckets) != buckets:
            problems.append(f"{name}: buckets must be sorted ascending")
        if not isinstance(counts, list) or len(counts) != len(buckets) + 1:
            problems.append(
                f"{name}: counts must have len(buckets)+1 entries "
                f"(got {len(counts) if isinstance(counts, list) else counts!r})"
            )
            return
        if not all(isinstance(c, int) and c >= 0 for c in counts):
            problems.append(f"{name}: counts must be non-negative integers")
        if isinstance(sample["count"], int) and sum(counts) != sample["count"]:
            problems.append(
                f"{name}: bucket counts sum to {sum(counts)} but count is "
                f"{sample['count']}"
            )
    else:
        value = sample.get("value")
        if not isinstance(value, (int, float)):
            problems.append(f"{name}: sample value must be a number, got {value!r}")
        elif kind == "counter" and value < 0:
            problems.append(f"{name}: counter value {value} is negative")


def validate_snapshot(
    snapshot: object, *, require_families: tuple[str, ...] = ()
) -> list[str]:
    """Return a list of problems with ``snapshot`` (empty = valid)."""
    problems: list[str] = []
    if not isinstance(snapshot, dict):
        return [f"snapshot must be an object, got {type(snapshot).__name__}"]
    if snapshot.get("version") != SNAPSHOT_VERSION:
        problems.append(
            f"version must be {SNAPSHOT_VERSION}, got {snapshot.get('version')!r}"
        )
    metrics = snapshot.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("snapshot.metrics must be an object")
        return problems
    for name, family in metrics.items():
        if not isinstance(family, dict):
            problems.append(f"{name}: family must be an object")
            continue
        kind = family.get("type")
        if kind not in _VALID_TYPES:
            problems.append(f"{name}: unknown metric type {kind!r}")
            continue
        samples = family.get("samples")
        if not isinstance(samples, list) or not samples:
            problems.append(f"{name}: samples must be a non-empty list")
            continue
        seen_labels = set()
        for sample in samples:
            _check_sample(name, kind, sample, problems)
            if isinstance(sample, dict) and isinstance(sample.get("labels", {}), dict):
                key = tuple(sorted(sample.get("labels", {}).items()))
                if key in seen_labels:
                    problems.append(f"{name}: duplicate label set {dict(key)!r}")
                seen_labels.add(key)
    for name in require_families:
        if name not in metrics:
            problems.append(f"required metric family {name!r} missing")
    return problems


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    strict = "--require-pipeline-families" in args
    paths = [a for a in args if not a.startswith("--")]
    if not paths:
        print(
            "usage: python -m repro.telemetry.schema "
            "[--require-pipeline-families] SNAPSHOT.json...",
            file=sys.stderr,
        )
        return 2
    status = 0
    for path in paths:
        with open(path, "r", encoding="utf-8") as fh:
            snapshot = json.load(fh)
        problems = validate_snapshot(
            snapshot,
            require_families=REQUIRED_FAMILIES if strict else (),
        )
        if problems:
            status = 1
            print(f"{path}: INVALID")
            for problem in problems:
                print(f"  - {problem}")
        else:
            families = len(snapshot.get("metrics", {}))
            print(f"{path}: ok ({families} metric families)")
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in CI
    raise SystemExit(main())
