"""Span-based tracing with Chrome trace-event export.

The §4.5 decomposition — "how much of the wall clock is the VM, how much
is the analysis?" — is a *timeline* question, and the easiest way to see
a timeline is to load it into ``chrome://tracing`` / Perfetto.  This
module records spans in the `Trace Event Format`_ (the ``X`` complete-
event flavour plus ``i`` instants and ``M`` metadata), on logical
tracks:

* track 0 — the VM / harness (``vm.run`` spans, experiment cells),
* one track per detector — per-event-batch busy spans emitted by the
  probe layer (:mod:`repro.telemetry.probe`).

Timestamps are microseconds since the tracer was created (Chrome's
expected unit), taken from ``time.perf_counter`` so spans nest
consistently with the wall-clock metrics.  Each tracer additionally
remembers the unix time of its creation (``epoch_unix`` in the
exported ``otherData``), which is what lets
:func:`merge_chrome_traces` align trace files recorded by *different
processes* — the sharded service's acceptor and workers — onto one
Perfetto timeline (``repro trace merge``).

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager

__all__ = ["Tracer", "VM_TRACK", "merge_chrome_traces"]

#: Logical track (Chrome "thread id") for VM- and harness-level spans.
VM_TRACK = 0


class Tracer:
    """Collects Chrome trace events in memory.

    The tracer is append-only and cheap: one dict per recorded span.
    Per-*event* spans would drown the timeline (and the run), so the
    probe layer batches handler invocations and reports one span per
    batch — the tracer itself is agnostic.
    """

    def __init__(self, *, pid: int = 1, process_name: str | None = None) -> None:
        self.pid = pid
        self.events: list[dict] = []
        self._t0 = time.perf_counter()
        #: Unix time of creation — the cross-process anchor ``repro
        #: trace merge`` aligns multi-process trace files with.
        self.epoch = time.time()
        self._tracks: dict[str, int] = {"vm": VM_TRACK}
        self._named: set[int] = set()
        #: Guards track creation: the service records spans from many
        #: reader/worker threads (event *appends* are atomic under the
        #: GIL; the check-then-create in :meth:`track` is not).
        self._track_lock = threading.Lock()
        if process_name:
            self.events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": self.pid,
                    "tid": VM_TRACK,
                    "args": {"name": process_name},
                }
            )
        self._name_track("vm", VM_TRACK)

    # ------------------------------------------------------------------
    # Track management
    # ------------------------------------------------------------------

    def track(self, name: str) -> int:
        """Stable small-int track id for ``name`` (created on first use)."""
        tid = self._tracks.get(name)
        if tid is None:
            with self._track_lock:
                tid = self._tracks.get(name)
                if tid is None:
                    tid = len(self._tracks)
                    self._tracks[name] = tid
                    self._name_track(name, tid)
        return tid

    def _name_track(self, name: str, tid: int) -> None:
        if tid in self._named:
            return
        self._named.add(tid)
        self.events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": self.pid,
                "tid": tid,
                "args": {"name": name},
            }
        )

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def now(self) -> float:
        """Seconds since tracer creation (the tracer's clock)."""
        return time.perf_counter() - self._t0

    def complete(
        self,
        name: str,
        *,
        start: float,
        duration: float,
        track: int = VM_TRACK,
        category: str = "repro",
        args: dict | None = None,
    ) -> None:
        """Record a finished span (``start``/``duration`` in tracer seconds)."""
        event = {
            "name": name,
            "cat": category,
            "ph": "X",
            "pid": self.pid,
            "tid": track,
            "ts": round(start * 1e6, 3),
            "dur": round(duration * 1e6, 3),
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def instant(
        self,
        name: str,
        *,
        track: int = VM_TRACK,
        category: str = "repro",
        args: dict | None = None,
    ) -> None:
        event = {
            "name": name,
            "cat": category,
            "ph": "i",
            "s": "t",
            "pid": self.pid,
            "tid": track,
            "ts": round(self.now() * 1e6, 3),
        }
        if args:
            event["args"] = args
        self.events.append(event)

    @contextmanager
    def span(
        self,
        name: str,
        *,
        track: int = VM_TRACK,
        category: str = "repro",
        args: dict | None = None,
    ):
        """Context manager recording one complete span around the block."""
        start = self.now()
        try:
            yield self
        finally:
            self.complete(
                name,
                start=start,
                duration=self.now() - start,
                track=track,
                category=category,
                args=args,
            )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_chrome(self) -> dict:
        """The ``chrome://tracing`` / Perfetto JSON object."""
        return {
            "traceEvents": list(self.events),
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.telemetry",
                "epoch_unix": self.epoch,
            },
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome(), fh, indent=1)
            fh.write("\n")

    def __len__(self) -> int:
        return len(self.events)


# ----------------------------------------------------------------------
# Cross-process merge (``repro trace merge``)
# ----------------------------------------------------------------------


def merge_chrome_traces(docs, *, names=None) -> dict:
    """Merge Chrome trace documents from several processes into one.

    Each ``doc`` is a parsed trace object (what :meth:`Tracer.to_chrome`
    produces).  Two reconciliations make the merge a *timeline* rather
    than a pile:

    * **clock alignment** — every tracer's timestamps are relative to
      its own creation; documents carrying ``otherData.epoch_unix`` are
      shifted by their epoch's offset from the earliest one, so a span
      the acceptor recorded at wall-time T lands next to the span the
      worker recorded at T.  Documents without an epoch (foreign files)
      are left unshifted.
    * **pid disambiguation** — colliding ``pid`` values across
      documents are remapped to fresh ids, so Perfetto renders one
      process group per source process instead of interleaving them.

    ``names`` optionally labels each document (e.g. its filename); a
    document that has no ``process_name`` metadata of its own gets a
    synthesised one, so the merged view stays navigable.
    """
    docs = list(docs)
    epochs = [
        d.get("otherData", {}).get("epoch_unix")
        if isinstance(d.get("otherData"), dict)
        else None
        for d in docs
    ]
    known = [e for e in epochs if isinstance(e, (int, float))]
    base = min(known) if known else None

    merged: list[dict] = []
    taken: set = set()
    for i, doc in enumerate(docs):
        events = doc.get("traceEvents", [])
        shift_us = 0.0
        if base is not None and isinstance(epochs[i], (int, float)):
            shift_us = (epochs[i] - base) * 1e6
        mapping: dict = {}
        named_pids: set = set()
        for event in events:
            pid = event.get("pid", 0)
            if pid not in mapping:
                new = pid
                while new in taken:
                    new = (max(taken) if taken else 0) + 1
                mapping[pid] = new
                taken.add(new)
            out = dict(event)
            out["pid"] = mapping[pid]
            if "ts" in out:
                out["ts"] = round(out["ts"] + shift_us, 3)
            if out.get("ph") == "M" and out.get("name") == "process_name":
                named_pids.add(out["pid"])
            merged.append(out)
        if names is not None and i < len(names):
            for pid in sorted(set(mapping.values()) - named_pids):
                merged.append(
                    {
                        "name": "process_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": VM_TRACK,
                        "args": {"name": str(names[i])},
                    }
                )
    return {
        "traceEvents": merged,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.telemetry",
            "merged_from": len(docs),
            **({"epoch_unix": base} if base is not None else {}),
        },
    }
