"""Span-based tracing with Chrome trace-event export.

The §4.5 decomposition — "how much of the wall clock is the VM, how much
is the analysis?" — is a *timeline* question, and the easiest way to see
a timeline is to load it into ``chrome://tracing`` / Perfetto.  This
module records spans in the `Trace Event Format`_ (the ``X`` complete-
event flavour plus ``i`` instants and ``M`` metadata), on logical
tracks:

* track 0 — the VM / harness (``vm.run`` spans, experiment cells),
* one track per detector — per-event-batch busy spans emitted by the
  probe layer (:mod:`repro.telemetry.probe`).

Timestamps are microseconds since the tracer was created (Chrome's
expected unit), taken from ``time.perf_counter`` so spans nest
consistently with the wall-clock metrics.

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager

__all__ = ["Tracer", "VM_TRACK"]

#: Logical track (Chrome "thread id") for VM- and harness-level spans.
VM_TRACK = 0


class Tracer:
    """Collects Chrome trace events in memory.

    The tracer is append-only and cheap: one dict per recorded span.
    Per-*event* spans would drown the timeline (and the run), so the
    probe layer batches handler invocations and reports one span per
    batch — the tracer itself is agnostic.
    """

    def __init__(self, *, pid: int = 1) -> None:
        self.pid = pid
        self.events: list[dict] = []
        self._t0 = time.perf_counter()
        self._tracks: dict[str, int] = {"vm": VM_TRACK}
        self._named: set[int] = set()
        self._name_track("vm", VM_TRACK)

    # ------------------------------------------------------------------
    # Track management
    # ------------------------------------------------------------------

    def track(self, name: str) -> int:
        """Stable small-int track id for ``name`` (created on first use)."""
        tid = self._tracks.get(name)
        if tid is None:
            tid = len(self._tracks)
            self._tracks[name] = tid
            self._name_track(name, tid)
        return tid

    def _name_track(self, name: str, tid: int) -> None:
        if tid in self._named:
            return
        self._named.add(tid)
        self.events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": self.pid,
                "tid": tid,
                "args": {"name": name},
            }
        )

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def now(self) -> float:
        """Seconds since tracer creation (the tracer's clock)."""
        return time.perf_counter() - self._t0

    def complete(
        self,
        name: str,
        *,
        start: float,
        duration: float,
        track: int = VM_TRACK,
        category: str = "repro",
        args: dict | None = None,
    ) -> None:
        """Record a finished span (``start``/``duration`` in tracer seconds)."""
        event = {
            "name": name,
            "cat": category,
            "ph": "X",
            "pid": self.pid,
            "tid": track,
            "ts": round(start * 1e6, 3),
            "dur": round(duration * 1e6, 3),
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def instant(
        self,
        name: str,
        *,
        track: int = VM_TRACK,
        category: str = "repro",
        args: dict | None = None,
    ) -> None:
        event = {
            "name": name,
            "cat": category,
            "ph": "i",
            "s": "t",
            "pid": self.pid,
            "tid": track,
            "ts": round(self.now() * 1e6, 3),
        }
        if args:
            event["args"] = args
        self.events.append(event)

    @contextmanager
    def span(
        self,
        name: str,
        *,
        track: int = VM_TRACK,
        category: str = "repro",
        args: dict | None = None,
    ):
        """Context manager recording one complete span around the block."""
        start = self.now()
        try:
            yield self
        finally:
            self.complete(
                name,
                start=start,
                duration=self.now() - start,
                track=track,
                category=category,
                args=args,
            )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_chrome(self) -> dict:
        """The ``chrome://tracing`` / Perfetto JSON object."""
        return {
            "traceEvents": list(self.events),
            "displayTimeUnit": "ms",
            "otherData": {"generator": "repro.telemetry"},
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome(), fh, indent=1)
            fh.write("\n")

    def __len__(self) -> int:
        return len(self.events)
