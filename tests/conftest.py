"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.runtime import VM, RoundRobinScheduler
from repro.runtime.trace import TraceRecorder


def run_program(program, *args, scheduler=None, detectors=(), step_limit=2_000_000):
    """Run ``program`` on a fresh VM and return ``(result, vm)``."""
    vm = VM(
        scheduler=scheduler or RoundRobinScheduler(),
        detectors=tuple(detectors),
        step_limit=step_limit,
    )
    result = vm.run(program, *args)
    return result, vm


def record_trace(program, *args, scheduler=None):
    """Run ``program`` and return the recorded event list."""
    recorder = TraceRecorder()
    _, vm = run_program(program, *args, scheduler=scheduler, detectors=(recorder,))
    return recorder.events, vm


@pytest.fixture
def vm():
    """A fresh VM with the default round-robin scheduler."""
    return VM()
