"""Tests for the pooled C++ allocator and its detector-visible effects."""

from __future__ import annotations

from repro.cxx.allocator import AllocStrategy, CxxAllocator
from repro.detectors import HelgrindConfig, HelgrindDetector
from repro.oracle import GroundTruth, WarningCategory
from repro.runtime import VM


def run(program, detectors=()):
    vm = VM(detectors=tuple(detectors))
    result = vm.run(program)
    return result, vm


class TestPoolMechanics:
    def test_pool_reuses_addresses(self):
        addrs = []

        def prog(api):
            alloc = CxxAllocator(api)
            a = alloc.allocate(api, 4, tag="x")
            api.store(a, 1)
            alloc.deallocate(api, a, 4)
            b = alloc.allocate(api, 4, tag="y")
            addrs.extend([a, b])

        run(prog)
        assert addrs[0] == addrs[1]

    def test_force_new_never_reuses(self):
        addrs = []

        def prog(api):
            alloc = CxxAllocator(api, strategy=AllocStrategy.FORCE_NEW)
            a = alloc.allocate(api, 4, tag="x")
            api.store(a, 1)
            alloc.deallocate(api, a, 4)
            b = alloc.allocate(api, 4, tag="y")
            addrs.extend([a, b])

        run(prog)
        assert addrs[0] != addrs[1]

    def test_large_allocations_bypass_pool(self):
        def prog(api):
            alloc = CxxAllocator(api)
            a = alloc.allocate(api, 100, tag="big")
            alloc.deallocate(api, a, 100)
            return alloc.stats()

        stats, _ = run(prog)
        assert stats["direct_allocs"] == 1
        assert stats["pool_hits"] == 0

    def test_size_class_rounding(self):
        """A 3-word request and a 4-word request share a size class."""
        addrs = []

        def prog(api):
            alloc = CxxAllocator(api)
            a = alloc.allocate(api, 3, tag="x")
            alloc.deallocate(api, a, 3)
            b = alloc.allocate(api, 4, tag="y")
            addrs.extend([a, b])

        run(prog)
        assert addrs[0] == addrs[1]

    def test_reuse_count(self):
        def prog(api):
            alloc = CxxAllocator(api)
            for _ in range(5):
                a = alloc.allocate(api, 2)
                alloc.deallocate(api, a, 2)
            return alloc.reuse_count

        count, _ = run(prog)
        assert count == 4  # first is fresh, rest recycled

    def test_distinct_live_allocations_disjoint(self):
        def prog(api):
            alloc = CxxAllocator(api)
            a = alloc.allocate(api, 4)
            b = alloc.allocate(api, 4)
            assert a != b
            api.store(a, 1)
            api.store(b, 2)
            return api.load(a), api.load(b)

        result, _ = run(prog)
        assert result == (1, 2)


class TestDetectorInteraction:
    def _churn(self, strategy, announce=False):
        """Two *concurrent* worker threads use successive objects that the
        pool carves from the same range.  The free/alloc boundary between
        the epochs is invisible to the detector (no VM events), and the
        workers share no create/join ordering, so the second epoch's
        accesses look like unsynchronised touches of the first epoch's
        memory — the §4 reuse false positive."""
        truth = GroundTruth()

        def prog(api):
            alloc = CxxAllocator(api, strategy=strategy, truth=truth, announce=announce)
            turn = api.semaphore(0)  # sequences the epochs in *time* only

            def first_user(a):
                x = alloc.allocate(a, 4, tag="obj1")
                with a.frame("first_user", "churn.cpp", 5):
                    a.store(x, 1)
                    a.load(x)
                alloc.deallocate(a, x, 4)
                a.sem_post(turn)
                a.sleep(10)  # stays alive: no join edge to the second user

            def second_user(a):
                a.sem_wait(turn)
                y = alloc.allocate(a, 4, tag="obj2")
                with a.frame("second_user", "churn.cpp", 15):
                    a.store(y, 2)

            t1 = api.spawn(first_user)
            t2 = api.spawn(second_user)
            api.join(t1)
            api.join(t2)

        det = HelgrindDetector(HelgrindConfig.hwlc_dr())
        run(prog, detectors=(det,))
        return det, truth

    def test_pool_reuse_confuses_detector(self):
        det, truth = self._churn(AllocStrategy.POOL)
        # Reuse leaves stale shadow state: warnings on recycled words.
        assert det.report.location_count >= 1
        entry = truth.entry_for(det.report.warnings[0].addr)
        assert entry is not None
        assert entry.category is WarningCategory.FP_ALLOC_REUSE

    def test_force_new_is_clean(self):
        det, _ = self._churn(AllocStrategy.FORCE_NEW)
        assert det.report.location_count == 0

    def test_announcing_pool_is_clean(self):
        """hg_clean on reissue fixes the pool without disabling it."""
        det, _ = self._churn(AllocStrategy.POOL, announce=True)
        assert det.report.location_count == 0
