"""Tests for STL-style containers and the libc model."""

from __future__ import annotations

import pytest

from repro.cxx import CxxAllocator, CxxMap, CxxVector, LibC
from repro.cxx.allocator import AllocStrategy
from repro.cxx.libc import TM_SIZE
from repro.detectors import DjitDetector, HelgrindConfig, HelgrindDetector
from repro.errors import GuestFault
from repro.oracle import GroundTruth, WarningCategory
from repro.runtime import VM


class TestVector:
    def test_push_and_get(self):
        def prog(api):
            v = CxxVector(api, CxxAllocator(api))
            for i in range(10):
                v.push_back(api, i * i)
            return [v.get(api, i) for i in range(10)], v.size(api)

        values, size = VM().run(prog)
        assert values == [i * i for i in range(10)]
        assert size == 10

    def test_growth_preserves_contents(self):
        def prog(api):
            v = CxxVector(api, CxxAllocator(api), capacity=2)
            for i in range(20):
                v.push_back(api, i)
            return [v.get(api, i) for i in range(20)]

        assert VM().run(prog) == list(range(20))

    def test_growth_recycles_old_buffer(self):
        def prog(api):
            alloc = CxxAllocator(api)
            v = CxxVector(api, alloc, capacity=2)
            for i in range(10):
                v.push_back(api, i)
            return alloc.stats()["pool_hits"] + len(alloc._free[2])

        assert VM().run(prog) >= 1  # old buffers returned to the pool

    def test_out_of_range_faults(self):
        def prog(api):
            v = CxxVector(api, CxxAllocator(api))
            v.push_back(api, 1)
            v.get(api, 5)

        with pytest.raises(GuestFault, match="out of range"):
            VM().run(prog)

    def test_pop_back(self):
        def prog(api):
            v = CxxVector(api, CxxAllocator(api))
            v.push_back(api, "a")
            v.push_back(api, "b")
            return v.pop_back(api), v.size(api)

        assert VM().run(prog) == ("b", 1)

    def test_pop_empty_faults(self):
        def prog(api):
            CxxVector(api, CxxAllocator(api)).pop_back(api)

        with pytest.raises(GuestFault, match="empty"):
            VM().run(prog)

    def test_destroy_releases(self):
        def prog(api):
            alloc = CxxAllocator(api, strategy=AllocStrategy.FORCE_NEW)
            v = CxxVector(api, alloc)
            v.push_back(api, 1)
            v.destroy(api)
            return len(VMHOLE := []) == 0

        assert VM().run(prog)


class TestMap:
    def test_insert_get(self):
        def prog(api):
            m = CxxMap(api, CxxAllocator(api))
            m.insert(api, "alice", 30)
            m.insert(api, "bob", 25)
            return m.get(api, "alice"), m.get(api, "bob"), m.get(api, "eve")

        assert VM().run(prog) == (30, 25, None)

    def test_insert_does_not_overwrite(self):
        def prog(api):
            m = CxxMap(api, CxxAllocator(api))
            first = m.insert(api, "k", 1)
            second = m.insert(api, "k", 2)
            return first, second, m.get(api, "k")

        assert VM().run(prog) == (True, False, 1)

    def test_set_overwrites(self):
        def prog(api):
            m = CxxMap(api, CxxAllocator(api))
            m.set(api, "k", 1)
            m.set(api, "k", 2)
            return m.get(api, "k"), m.size(api)

        assert VM().run(prog) == (2, 1)

    def test_subscript_inserts_default(self):
        def prog(api):
            m = CxxMap(api, CxxAllocator(api))
            v = m.subscript(api, "fresh")
            return v, m.contains(api, "fresh")

        assert VM().run(prog) == (0, True)

    def test_keys_sorted(self):
        def prog(api):
            m = CxxMap(api, CxxAllocator(api))
            for k in ("delta", "alpha", "charlie", "bravo"):
                m.set(api, k, 1)
            return m.keys(api)

        assert VM().run(prog) == ["alpha", "bravo", "charlie", "delta"]

    def test_many_entries(self):
        def prog(api):
            m = CxxMap(api, CxxAllocator(api))
            for i in range(30):
                m.set(api, f"key{i:02d}", i)
            return [m.get(api, f"key{i:02d}") for i in range(30)]

        assert VM().run(prog) == list(range(30))

    def test_unsynchronised_concurrent_use_is_detectably_racy(self):
        """The Figure 7 precondition: maps are not internally locked."""

        def prog(api):
            m = CxxMap(api, CxxAllocator(api))
            m.set(api, "seed", 0)

            def w(a, k):
                m.set(a, k, 1)

            t1, t2 = api.spawn(w, "a"), api.spawn(w, "b")
            api.join(t1)
            api.join(t2)

        det = HelgrindDetector(HelgrindConfig.hwlc())
        VM(detectors=(det,)).run(prog)
        assert det.report.location_count >= 1


class TestLibC:
    def test_localtime_fills_static_buffer(self):
        def prog(api):
            libc = LibC()
            buf = libc.localtime(api, 3600 * 5)
            return [api.load(buf + i) for i in range(TM_SIZE)]

        fields = VM().run(prog)
        assert fields[2] == 5  # hour

    def test_same_static_buffer_every_call(self):
        def prog(api):
            libc = LibC()
            return libc.localtime(api, 1), libc.localtime(api, 2)

        a, b = VM().run(prog)
        assert a == b

    def test_concurrent_localtime_is_a_true_race(self):
        truth = GroundTruth()

        def prog(api):
            libc = LibC(truth=truth)
            libc.localtime(api, 0)  # allocate+claim the static buffer

            def caller(a, ts):
                with a.frame("log_request", "proxy.cpp", 300):
                    buf = libc.localtime(a, ts)
                    a.load(buf + 2)

            t1, t2 = api.spawn(caller, 1000), api.spawn(caller, 2000)
            api.join(t1)
            api.join(t2)

        det = HelgrindDetector(HelgrindConfig.hwlc_dr())
        djit = DjitDetector()
        VM(detectors=(det, djit)).run(prog)
        assert det.report.location_count >= 1
        assert truth.category_of(det.report.warnings[0].addr) is WarningCategory.TRUE_RACE
        # It is an *apparent* race too (HB agrees):
        assert djit.report.location_count >= 1

    def test_localtime_r_is_clean(self):
        def prog(api):
            libc = LibC()

            def caller(a, ts):
                buf = a.malloc(TM_SIZE, tag="tm.local")
                libc.localtime_r(a, ts, buf)
                a.load(buf + 2)

            t1, t2 = api.spawn(caller, 1000), api.spawn(caller, 2000)
            api.join(t1)
            api.join(t2)

        det = HelgrindDetector(HelgrindConfig.hwlc_dr())
        VM(detectors=(det,)).run(prog)
        assert det.report.location_count == 0

    def test_strtok_static_cursor(self):
        def prog(api):
            libc = LibC()
            text = api.malloc(1, tag="line")
            api.store(text, "a,b,c")
            toks = [libc.strtok(api, text, ",")]
            toks.append(libc.strtok(api, None, ","))
            toks.append(libc.strtok(api, None, ","))
            toks.append(libc.strtok(api, None, ","))
            return toks

        assert VM().run(prog) == ["a", "b", "c", None]

    def test_ctime_and_asctime(self):
        def prog(api):
            libc = LibC()
            c = api.load(libc.ctime(api, 42))
            tm = libc.gmtime(api, 42)
            a = api.load(libc.asctime(api, tm))
            return c, a.startswith("tm:")

        c, ok = VM().run(prog)
        assert "42" in c
        assert ok

    def test_call_counters(self):
        def prog(api):
            libc = LibC()
            libc.localtime(api, 1)
            libc.localtime(api, 2)
            libc.gmtime(api, 3)
            return dict(libc.calls)

        calls = VM().run(prog)
        assert calls == {"localtime": 2, "gmtime": 1}


class TestMapEdgeCases:
    def test_set_value_none_acts_as_removal(self):
        """The proxy 'removes' table entries by nulling the value."""

        def prog(api):
            m = CxxMap(api, CxxAllocator(api))
            m.set(api, "k", "v")
            m.set(api, "k", None)
            return m.get(api, "k"), m.contains(api, "k")

        value, contains = VM().run(prog)
        assert value is None
        assert contains  # the key slot survives; the value is gone

    def test_map_destroy_releases_storage(self):
        def prog(api):
            alloc = CxxAllocator(api, strategy=AllocStrategy.FORCE_NEW)
            m = CxxMap(api, alloc)
            m.set(api, "a", 1)
            m.destroy(api)

        vm = VM()
        vm.run(prog)
        assert vm.memory.live_blocks() == []

    def test_storage_peek_matches_traced_state(self):
        def prog(api):
            m = CxxMap(api, CxxAllocator(api))
            for i in range(6):
                m.set(api, f"k{i}", i)
            return m

        vm = VM()
        m = vm.run(prog)
        buf, cap = m.storage_peek(vm)
        assert cap >= 12  # six (key, value) pairs
        assert vm.memory.find_block(buf) is not None


class TestCompiledProgramReuse:
    def test_program_object_survives_multiple_runs(self):
        from repro.instrument import compile_module, parse

        program = compile_module(
            parse('global n = 0; fn main() { n = n + 1; print(n); return n; }')
        )
        assert VM().run(program.main) == 1
        assert VM().run(program.main) == 1  # fresh globals per run
        assert program.last_output == [1]
