"""Tests for the C++ object model (vptr writes, ctor/dtor chains)."""

from __future__ import annotations

import pytest

from repro.cxx import CxxAllocator, CxxClass, delete_object, new_object
from repro.detectors import HelgrindConfig, HelgrindDetector
from repro.errors import GuestFault
from repro.oracle import GroundTruth, WarningCategory
from repro.runtime import VM
from repro.runtime.events import MemoryAccess
from repro.runtime.trace import TraceRecorder


BASE = CxxClass("Message", fields=("refcount", "length"), file="msg.h", line=10)
DERIVED = CxxClass("SipRequest", base=BASE, fields=("method", "uri"), file="sip.h", line=30)
DEEP = CxxClass("InviteRequest", base=DERIVED, fields=("sdp",), file="sip.h", line=80)


class TestLayout:
    def test_size_includes_header_and_bases(self):
        assert BASE.size == 3
        assert DERIVED.size == 5
        assert DEEP.size == 6

    def test_field_offsets_base_first(self):
        assert DERIVED.field_offset("refcount") == 1
        assert DERIVED.field_offset("length") == 2
        assert DERIVED.field_offset("method") == 3
        assert DERIVED.field_offset("uri") == 4

    def test_unknown_field_raises(self):
        with pytest.raises(KeyError):
            DERIVED.field_offset("nope")

    def test_mro_base_to_derived(self):
        assert [c.name for c in DEEP.mro()] == ["Message", "SipRequest", "InviteRequest"]

    def test_duplicate_field_rejected(self):
        with pytest.raises(ValueError):
            CxxClass("Bad", base=BASE, fields=("refcount",))

    def test_all_fields(self):
        assert DEEP.all_fields() == ["refcount", "length", "method", "uri", "sdp"]


class TestConstruction:
    def test_new_object_initialises_fields(self):
        def prog(api):
            alloc = CxxAllocator(api)
            obj = new_object(api, DERIVED, alloc, init={"method": "INVITE"})
            return obj.get(api, "method"), obj.get(api, "refcount")

        assert VM().run(prog) == ("INVITE", 0)

    def test_ctor_chain_writes_vptr_per_class(self):
        recorder = TraceRecorder()

        def prog(api):
            alloc = CxxAllocator(api)
            new_object(api, DEEP, alloc)

        VM(detectors=(recorder,)).run(prog)
        header_writes = [
            e
            for e in recorder.events
            if isinstance(e, MemoryAccess) and e.is_write and e.site
            and "::" in e.site.function and "~" not in e.site.function
            and e.addr == min(
                ev.addr for ev in recorder.events if isinstance(ev, MemoryAccess)
            )
        ]
        # Three constructors, three vptr stores, base first.
        ctor_frames = [e.site.function for e in header_writes]
        assert ctor_frames == [
            "Message::Message",
            "SipRequest::SipRequest",
            "InviteRequest::InviteRequest",
        ]

    def test_final_vptr_is_most_derived(self):
        def prog(api):
            alloc = CxxAllocator(api)
            obj = new_object(api, DEEP, alloc)
            return api.load(obj.header_addr)

        assert VM().run(prog) == "vtbl:InviteRequest"


class TestVirtualDispatch:
    def test_vcall_reads_vptr_and_dispatches(self):
        base = CxxClass(
            "Animal",
            fields=("legs",),
            methods={"speak": lambda api, obj: "..."},
        )
        derived = CxxClass(
            "Dog",
            base=base,
            methods={"speak": lambda api, obj: "woof"},
        )

        def prog(api):
            alloc = CxxAllocator(api)
            a = new_object(api, base, alloc)
            d = new_object(api, derived, alloc)
            return a.vcall(api, "speak"), d.vcall(api, "speak")

        assert VM().run(prog) == ("...", "woof")

    def test_vcall_on_corrupt_object_faults(self):
        def prog(api):
            alloc = CxxAllocator(api)
            obj = new_object(api, BASE, alloc)
            api.store(obj.header_addr, 12345)  # smash the vptr
            obj.vcall(api, "anything")

        with pytest.raises(GuestFault, match="corrupt"):
            VM().run(prog)

    def test_missing_method_raises(self):
        def prog(api):
            alloc = CxxAllocator(api)
            obj = new_object(api, BASE, alloc)
            obj.vcall(api, "no_such")

        with pytest.raises(KeyError):
            VM().run(prog)


class TestDestruction:
    def test_dtor_chain_rewrites_vptr_derived_to_base(self):
        recorder = TraceRecorder()

        def prog(api):
            alloc = CxxAllocator(api)
            obj = new_object(api, DEEP, alloc)
            header = obj.header_addr
            delete_object(api, obj, alloc, annotate=False)
            return header

        vm = VM(detectors=(recorder,))
        header = vm.run(prog)
        dtor_writes = [
            e
            for e in recorder.events
            if isinstance(e, MemoryAccess)
            and e.is_write
            and e.addr == header
            and e.site
            and "~" in e.site.function
        ]
        # Three classes deep: the two *base* destructor entries rewrite.
        assert [e.site.function for e in dtor_writes] == [
            "SipRequest::~SipRequest",
            "Message::~Message",
        ]

    def test_plain_class_destructor_writes_nothing(self):
        """Non-derived classes never rewrite the vptr (§4.2.1: the FPs
        'all belong to derived classes')."""
        recorder = TraceRecorder()

        def prog(api):
            alloc = CxxAllocator(api)
            obj = new_object(api, BASE, alloc)
            header = obj.header_addr
            delete_object(api, obj, alloc, annotate=False)
            return header

        header = VM(detectors=(recorder,)).run(prog)
        dtor_writes = [
            e
            for e in recorder.events
            if isinstance(e, MemoryAccess)
            and e.is_write
            and e.addr == header
            and e.site
            and "~" in e.site.function
        ]
        assert dtor_writes == []

    def test_annotate_emits_hg_destruct(self):
        from repro.runtime.events import ClientRequest

        recorder = TraceRecorder()

        def prog(api):
            alloc = CxxAllocator(api)
            obj = new_object(api, DERIVED, alloc)
            delete_object(api, obj, alloc, annotate=True)

        VM(detectors=(recorder,)).run(prog)
        reqs = [e for e in recorder.events if isinstance(e, ClientRequest)]
        assert len(reqs) == 1
        assert reqs[0].request == "hg_destruct"
        assert reqs[0].size == DERIVED.size

    def test_dtor_bodies_run_derived_first(self):
        order = []
        base = CxxClass("B", methods={"~": lambda api, obj: order.append("B")})
        derived = CxxClass(
            "D", base=base, methods={"~": lambda api, obj: order.append("D")}
        )

        def prog(api):
            alloc = CxxAllocator(api)
            obj = new_object(api, derived, alloc)
            delete_object(api, obj, alloc, annotate=False)

        VM().run(prog)
        assert order == ["D", "B"]

    def test_truth_claim_registered(self):
        truth = GroundTruth()

        def prog(api):
            alloc = CxxAllocator(api)
            obj = new_object(api, DERIVED, alloc)
            header = obj.header_addr
            delete_object(api, obj, alloc, annotate=False, truth=truth)
            return header

        header = VM().run(prog)
        assert truth.category_of(header) is WarningCategory.FP_DESTRUCTOR


class TestEndToEndDestructorFP:
    """The full §4.2.1 story on real objects."""

    def _scenario(self, api, annotate):
        alloc = CxxAllocator(api)
        truth = GroundTruth()
        obj = new_object(api, DERIVED, alloc, init={"method": "INVITE"})
        m = api.mutex()

        def user(a):
            a.lock(m)
            obj.vcall(api=a, method="handle") if False else a.load(obj.header_addr)
            a.load(obj.field_addr("method"))
            a.unlock(m)
            a.sleep(20)  # stays alive

        api.spawn(user)
        api.spawn(user)
        api.sleep(8)
        delete_object(api, obj, alloc, annotate=annotate, truth=truth)
        return truth

    def test_unannotated_derived_delete_warns(self):
        det = HelgrindDetector(HelgrindConfig.hwlc())
        truth_box = []
        VM(detectors=(det,)).run(lambda api: truth_box.append(self._scenario(api, False)))
        assert det.report.location_count >= 1
        w = det.report.warnings[0]
        assert "~" in w.site.function
        assert truth_box[0].category_of(w.addr) is WarningCategory.FP_DESTRUCTOR

    def test_annotated_derived_delete_is_silent(self):
        det = HelgrindDetector(HelgrindConfig.hwlc_dr())
        VM(detectors=(det,)).run(lambda api: self._scenario(api, True))
        assert det.report.location_count == 0
