"""Tests for the copy-on-write string — the Figure 8/9 reproduction."""

from __future__ import annotations

from repro.cxx import CowString, CxxAllocator
from repro.cxx.allocator import AllocStrategy
from repro.detectors import HelgrindConfig, HelgrindDetector
from repro.oracle import GroundTruth, WarningCategory
from repro.runtime import VM


def fresh(api, text="contents", truth=None):
    alloc = CxxAllocator(api, strategy=AllocStrategy.FORCE_NEW, truth=truth)
    return CowString.create(api, text, alloc, truth=truth)


class TestCowSemantics:
    def test_create_and_read(self):
        def prog(api):
            s = fresh(api, "hello")
            return s.value(api), s.length(api), s.refcount(api)

        assert VM().run(prog) == ("hello", 5, 1)

    def test_copy_shares_rep(self):
        def prog(api):
            s = fresh(api)
            t = s.copy(api)
            return s.rep == t.rep, s.refcount(api)

        assert VM().run(prog) == (True, 2)

    def test_dispose_frees_last_reference(self):
        def prog(api):
            s = fresh(api)
            t = s.copy(api)
            t.dispose(api)
            still = s.value(api)  # rep must still be alive
            s.dispose(api)
            return still

        result, = (VM().run(prog),)
        assert result == "contents"

    def test_dispose_last_actually_frees(self):
        from repro.errors import GuestFault

        import pytest

        def prog(api):
            s = fresh(api)
            s.dispose(api)
            s.value(api)  # use after free

        with pytest.raises(GuestFault, match="freed"):
            VM().run(prog)

    def test_mutate_unshares(self):
        def prog(api):
            s = fresh(api, "orig")
            t = s.copy(api)
            t2 = t.mutate(api, "changed")
            return s.value(api), t2.value(api), t2.rep != s.rep

        assert VM().run(prog) == ("orig", "changed", True)

    def test_mutate_in_place_when_unshared(self):
        def prog(api):
            s = fresh(api, "orig")
            s2 = s.mutate(api, "new")
            return s2.rep == s.rep, s2.value(api)

        assert VM().run(prog) == (True, "new")


class TestFigure8:
    """The stringtest.cpp scenario, line for line.

    main() constructs a string, spawns a worker that copies it, then
    copies it itself (Figure 8 line 22 — the reported conflict).
    """

    def _stringtest(self, api, truth):
        alloc = CxxAllocator(api, strategy=AllocStrategy.FORCE_NEW, truth=truth)
        with api.frame("main", "stringtest.cpp", 16):
            text = CowString.create(api, "contents", alloc, truth=truth)

        def worker_thread(a):
            with a.frame("workerThread", "stringtest.cpp", 10):
                local = text.copy(a)
                local.dispose(a)

        t = api.spawn(worker_thread)
        api.sleep(3)  # the sleep(1) of line 21
        with api.frame("main", "stringtest.cpp", 22):
            text_copy = text.copy(api)  # <- reported conflict
        api.join(t)
        text_copy.dispose(api)
        text.dispose(api)

    def test_original_helgrind_reports_m_grab(self):
        truth = GroundTruth()
        det = HelgrindDetector(HelgrindConfig.original())
        VM(detectors=(det,)).run(lambda api: self._stringtest(api, truth))
        # Every warning is a refcount write inside the libstdc++ string
        # internals (_M_grab's increments, _M_dispose's decrements); the
        # main-thread copy of line 22 (Figure 8's "reported conflict")
        # is among the reported locations.
        assert det.report.location_count >= 1
        for w in det.report.warnings:
            assert w.site.function in ("_M_grab", "_M_dispose")
            assert truth.category_of(w.addr) is WarningCategory.FP_HW_LOCK
        assert any("writing" in w.message for w in det.report.warnings)
        assert any(
            any(f.file == "stringtest.cpp" and f.line == 22 for f in w.stack)
            for w in det.report.warnings
        )

    def test_corrected_bus_lock_is_silent(self):
        """The paper: 'we implemented this correction successfully'."""
        det = HelgrindDetector(HelgrindConfig.hwlc())
        VM(detectors=(det,)).run(lambda api: self._stringtest(api, GroundTruth()))
        assert det.report.location_count == 0

    def test_warning_text_matches_figure9_shape(self):
        truth = GroundTruth()
        det = HelgrindDetector(HelgrindConfig.original())
        vm = VM(detectors=(det,))
        vm.run(lambda api: self._stringtest(api, truth))
        text = det.report.warnings[0].format()
        assert "Possible data race writing variable" in text
        assert "_M_grab (basic_string.h:" in text
        assert "words inside a block of size" in text  # the alloc'd line
        assert "Previous state" in text


class TestConcurrentCopies:
    def test_many_concurrent_copies_keep_refcount_consistent(self):
        """The bus lock makes refcounting correct — only the *detector's
        model* of it was wrong.  N copies + N disposes -> refcount 1."""

        def prog(api):
            s = fresh(api)

            def copier(a):
                local = s.copy(a)
                a.yield_()
                local.dispose(a)

            ts = [api.spawn(copier) for _ in range(8)]
            for t in ts:
                api.join(t)
            return s.refcount(api)

        from repro.runtime import RandomScheduler

        for seed in range(3):
            vm = VM(scheduler=RandomScheduler(seed))
            assert vm.run(prog) == 1


class TestMutateUnderDetection:
    def test_private_mutation_never_warns(self):
        from repro.detectors import HelgrindConfig, HelgrindDetector

        def prog(api):
            s = fresh(api, "orig")
            s2 = s.mutate(api, "new")
            s2.dispose(api)

        det = HelgrindDetector(HelgrindConfig.hwlc())
        VM(detectors=(det,)).run(prog)
        assert det.report.location_count == 0

    def test_cow_unshare_under_concurrent_readers(self):
        """A writer unshares before mutating; readers keep the old rep."""

        def prog(api):
            s = fresh(api, "shared-text")
            observed = []

            def reader(a):
                local = s.copy(a)
                a.yield_()
                observed.append(local.value(a))
                local.dispose(a)

            t1, t2 = api.spawn(reader), api.spawn(reader)
            api.sleep(2)
            s_new = s.mutate(api, "changed")
            api.join(t1)
            api.join(t2)
            final = s_new.value(api)
            s_new.dispose(api)
            return observed, final

        (observed, final), = (VM().run(prog),)
        assert final == "changed"
        assert all(v == "shared-text" for v in observed)
