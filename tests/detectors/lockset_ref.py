"""Reference lock-set machine: the pre-paging dict-of-objects model.

This is the shadow-memory representation the repo used before the paged
packed engine landed: one mutable ``RefShadowWord`` object per touched
guest word, held in a flat ``dict``, with range operations walking every
address in the range.  Semantically it *is* the Figure 1 machine — only
the storage differs — which makes it the executable specification the
hypothesis equivalence suite (``test_lockset_equivalence.py``) checks
the packed engine against: any divergence in outcome, state, owner or
candidate set on any event sequence is a bug in the optimisation.

Kept deliberately simple and allocation-happy; never import it outside
the test suite.
"""

from __future__ import annotations

from repro.detectors.lockset import (
    EMPTY_ID,
    LOCKSETS,
    LocksetOutcome,
    NO_LOCKSET,
    WordState,
)
from repro.detectors.segments import SegmentGraph

__all__ = ["RefShadowWord", "RefLocksetMachine"]


class RefShadowWord:
    """Per-word shadow state as a plain mutable object."""

    __slots__ = ("state", "owner", "lockset_id")

    def __init__(
        self,
        state: WordState = WordState.NEW,
        owner: int = -1,
        lockset_id: int = NO_LOCKSET,
    ) -> None:
        self.state = state
        self.owner = owner
        self.lockset_id = lockset_id


class RefLocksetMachine:
    """Dict-of-``RefShadowWord`` twin of
    :class:`repro.detectors.lockset.LocksetMachine`.

    Same constructor switches, same access rule, same range-operation
    semantics — O(words) instead of O(pages), objects instead of packed
    ints.
    """

    def __init__(
        self,
        segments: SegmentGraph,
        *,
        use_states: bool = True,
        segment_transfer: bool = True,
        once_per_word: bool = True,
    ) -> None:
        self.segments = segments
        self.use_states = use_states
        self.segment_transfer = segment_transfer
        self.once_per_word = once_per_word
        self._words: dict[int, RefShadowWord] = {}

    # -- lifecycle -----------------------------------------------------

    def on_alloc(self, addr: int, size: int) -> None:
        for a in range(addr, addr + size):
            self._words.pop(a, None)

    def on_free(self, addr: int, size: int) -> None:
        for a in range(addr, addr + size):
            self._words.pop(a, None)

    def make_exclusive(self, addr: int, size: int, owner: int) -> None:
        for a in range(addr, addr + size):
            word = self._words.get(a)
            if word is None:
                word = RefShadowWord()
                self._words[a] = word
            word.state = WordState.EXCLUSIVE
            word.owner = owner
            word.lockset_id = NO_LOCKSET

    # -- queries -------------------------------------------------------

    def word(self, addr: int) -> RefShadowWord:
        word = self._words.get(addr)
        if word is None:
            word = RefShadowWord()
            self._words[addr] = word
        return word

    def state_of(self, addr: int) -> WordState:
        word = self._words.get(addr)
        return word.state if word is not None else WordState.NEW

    def state_distribution(self) -> dict[WordState, int]:
        dist: dict[WordState, int] = {}
        for word in self._words.values():
            if word.state is not WordState.NEW or word.lockset_id != NO_LOCKSET:
                dist[word.state] = dist.get(word.state, 0) + 1
        return dist

    @property
    def tracked_words(self) -> int:
        return sum(
            1
            for w in self._words.values()
            if w.state is not WordState.NEW
            or w.owner != -1
            or w.lockset_id != NO_LOCKSET
        )

    # -- the access rule -----------------------------------------------

    def access(
        self, addr: int, tid: int, is_write: bool, locks_any, locks_write
    ) -> LocksetOutcome:
        if type(locks_any) is not int:
            locks_any = LOCKSETS.id_of(locks_any)
        if type(locks_write) is not int:
            locks_write = LOCKSETS.id_of(locks_write)

        word = self.word(addr)
        prev_state = word.state
        prev_id = word.lockset_id
        if not self.use_states:
            return self._raw_access(
                word, prev_state, prev_id, is_write, locks_any, locks_write
            )

        if prev_state is WordState.RACY:
            return LocksetOutcome(False, prev_state, prev_id, prev_id)

        owner = self._owner_token(tid)

        if prev_state is WordState.NEW:
            word.state = WordState.EXCLUSIVE
            word.owner = owner
            return LocksetOutcome(False, prev_state, NO_LOCKSET, NO_LOCKSET)

        if prev_state is WordState.EXCLUSIVE:
            if self._still_exclusive(word, tid, owner):
                word.owner = owner
                return LocksetOutcome(False, prev_state, NO_LOCKSET, NO_LOCKSET)
            if is_write:
                word.state = WordState.SHARED_MODIFIED
                new_id = locks_write
                race = new_id == EMPTY_ID
            else:
                word.state = WordState.SHARED
                new_id = locks_any
                race = False
            word.lockset_id = new_id
            if race and self.once_per_word:
                word.state = WordState.RACY
            return LocksetOutcome(race, prev_state, prev_id, new_id)

        if prev_state is WordState.SHARED:
            if is_write:
                word.state = WordState.SHARED_MODIFIED
                new_id = LOCKSETS.intersect(prev_id, locks_write)
                race = new_id == EMPTY_ID
            else:
                new_id = LOCKSETS.intersect(prev_id, locks_any)
                race = False
            word.lockset_id = new_id
            if race and self.once_per_word:
                word.state = WordState.RACY
            return LocksetOutcome(race, prev_state, prev_id, new_id)

        new_id = LOCKSETS.intersect(prev_id, locks_write if is_write else locks_any)
        word.lockset_id = new_id
        race = new_id == EMPTY_ID
        if race and self.once_per_word:
            word.state = WordState.RACY
        return LocksetOutcome(race, prev_state, prev_id, new_id)

    def access_check(
        self, addr: int, tid: int, is_write: bool, locks_any: int, locks_write: int
    ) -> LocksetOutcome | None:
        outcome = self.access(addr, tid, is_write, locks_any, locks_write)
        return outcome if outcome.race else None

    def _raw_access(
        self, word, prev_state, prev_id, is_write, locks_any, locks_write
    ) -> LocksetOutcome:
        if prev_state is WordState.RACY:
            return LocksetOutcome(False, prev_state, prev_id, prev_id)
        held = locks_write if is_write else locks_any
        new_id = held if prev_id == NO_LOCKSET else LOCKSETS.intersect(prev_id, held)
        word.lockset_id = new_id
        word.state = WordState.SHARED_MODIFIED if is_write else WordState.SHARED
        race = new_id == EMPTY_ID
        if race and self.once_per_word:
            word.state = WordState.RACY
        return LocksetOutcome(race, prev_state, prev_id, new_id)

    # ------------------------------------------------------------------

    def _owner_token(self, tid: int) -> int:
        if self.segment_transfer:
            return self.segments.current(tid).seg_id
        return tid

    def _still_exclusive(self, word: RefShadowWord, tid: int, owner: int) -> bool:
        if word.owner == owner:
            return True
        if not self.segment_transfer:
            return False
        owner_seg = self.segments.segment(word.owner)
        if owner_seg.tid == tid:
            return True
        return self.segments.happens_before(word.owner, owner)
