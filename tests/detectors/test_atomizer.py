"""Tests for the Atomizer-style atomicity checker (paper ref [4])."""

from __future__ import annotations

from repro.detectors import HelgrindConfig, HelgrindDetector
from repro.detectors.atomizer import AtomizerDetector
from repro.runtime import VM


def run_atomizer(program):
    det = AtomizerDetector()
    VM(detectors=(det,)).run(program)
    return det


class TestReducibleBlocks:
    def test_single_critical_section_is_atomic(self):
        """lock; reads/writes; unlock — R (B*) L: reducible."""

        def prog(api):
            addr = api.malloc(2)
            api.store(addr, 0)
            api.store(addr + 1, 0)
            m = api.mutex()

            def worker(a):
                with a.atomic_region("update"):
                    a.lock(m)
                    a.store(addr, a.load(addr) + 1)
                    a.store(addr + 1, a.load(addr + 1) + 1)
                    a.unlock(m)

            t1, t2 = api.spawn(worker), api.spawn(worker)
            api.join(t1)
            api.join(t2)

        det = run_atomizer(prog)
        assert det.regions_checked == 2
        assert det.report.location_count == 0

    def test_nested_locks_in_order_are_atomic(self):
        """R R (B*) L L is still reducible."""

        def prog(api):
            a_addr = api.malloc(1)
            b_addr = api.malloc(1)
            api.store(a_addr, 0)
            api.store(b_addr, 0)
            m1, m2 = api.mutex(), api.mutex()

            def worker(a):
                with a.atomic_region("transfer"):
                    a.lock(m1)
                    a.lock(m2)
                    a.store(a_addr, a.load(a_addr) - 1)
                    a.store(b_addr, a.load(b_addr) + 1)
                    a.unlock(m2)
                    a.unlock(m1)

            t1, t2 = api.spawn(worker), api.spawn(worker)
            api.join(t1)
            api.join(t2)

        det = run_atomizer(prog)
        assert det.report.location_count == 0

    def test_thread_local_work_is_atomic(self):
        def prog(api):
            def worker(a):
                scratch = a.malloc(2)
                with a.atomic_region("local"):
                    a.store(scratch, 1)
                    a.store(scratch + 1, a.load(scratch) + 1)

            t = api.spawn(worker)
            api.join(t)

        det = run_atomizer(prog)
        assert det.report.location_count == 0

    def test_code_outside_regions_is_never_checked(self):
        def prog(api):
            addr = api.malloc(1)
            api.store(addr, 0)
            m = api.mutex()

            def worker(a):
                # Blatant lock-release-lock, but no atomicity intent.
                a.lock(m)
                a.store(addr, a.load(addr) + 1)
                a.unlock(m)
                a.lock(m)
                a.store(addr, a.load(addr) + 1)
                a.unlock(m)

            t1, t2 = api.spawn(worker), api.spawn(worker)
            api.join(t1)
            api.join(t2)

        det = run_atomizer(prog)
        assert det.regions_checked == 0
        assert det.report.location_count == 0


class TestViolations:
    def test_lock_released_and_retaken_violates(self):
        """The §2.1 date-of-birth/age writer, declared atomic: the lock
        drops between the two dependent writes — R B L *R* → violation.
        Atomizer is the paper's second cited answer (after view
        consistency) to this exact example."""

        def prog(api):
            dob = api.malloc(1)
            age = api.malloc(1)
            api.store(dob, 1970)
            api.store(age, 37)
            m = api.mutex()

            def update_person(a):
                with a.atomic_region("update_person"):
                    a.lock(m)
                    a.store(dob, 1980)
                    a.unlock(m)
                    a.lock(m)  # <- right-mover after a left-mover
                    a.store(age, 27)
                    a.unlock(m)

            def reader(a):
                a.lock(m)
                a.load(dob)
                a.load(age)
                a.unlock(m)

            t1, t2 = api.spawn(update_person), api.spawn(reader)
            api.join(t1)
            api.join(t2)

        det = run_atomizer(prog)
        assert det.report.location_count == 1
        warning = det.report.warnings[0]
        assert warning.kind == "atomicity-violation"
        assert "update_person" in warning.message
        assert "left-mover" in warning.details["Reduction"]

    def test_two_unprotected_commit_points_violate(self):
        def prog(api):
            addr = api.malloc(1)
            api.store(addr, 0)

            def racer(a):
                with a.atomic_region("double-touch"):
                    a.store(addr, a.load(addr) + 1)  # racy read + write
                    a.store(addr, a.load(addr) + 1)

            t1, t2 = api.spawn(racer), api.spawn(racer)
            api.join(t1)
            api.join(t2)

        det = run_atomizer(prog)
        assert det.report.location_count >= 1
        assert any(
            "commit point" in w.details["Reduction"] for w in det.report.warnings
        )

    def test_violation_reported_once_per_region_instance_location(self):
        def prog(api):
            addr = api.malloc(1)
            api.store(addr, 0)
            m = api.mutex()

            def worker(a):
                for _ in range(3):
                    with a.atomic_region("loop-body"):
                        a.lock(m)
                        a.store(addr, a.load(addr) + 1)
                        a.unlock(m)
                        a.lock(m)
                        a.store(addr, a.load(addr) + 1)
                        a.unlock(m)

            t1, t2 = api.spawn(worker), api.spawn(worker)
            api.join(t1)
            api.join(t2)

        det = run_atomizer(prog)
        # Report layer dedups by stack: one location despite 6 regions.
        assert det.report.location_count == 1
        assert det.report.dynamic_count >= 2


class TestComposition:
    def test_atomizer_and_helgrind_coexist(self):
        """The markers are invisible to the race detector and vice versa."""

        def prog(api):
            addr = api.malloc(1)
            api.store(addr, 0)
            m = api.mutex()

            def worker(a):
                with a.atomic_region("ok"):
                    a.lock(m)
                    a.store(addr, a.load(addr) + 1)
                    a.unlock(m)

            t1, t2 = api.spawn(worker), api.spawn(worker)
            api.join(t1)
            api.join(t2)

        atomizer = AtomizerDetector()
        helgrind = HelgrindDetector(HelgrindConfig.hwlc_dr())
        VM(detectors=(atomizer, helgrind)).run(prog)
        assert atomizer.report.location_count == 0
        assert helgrind.report.location_count == 0

    def test_markers_are_noops_without_detectors(self):
        def prog(api):
            with api.atomic_region("nothing"):
                return 5
            return None

        assert VM().run(prog) == 5
