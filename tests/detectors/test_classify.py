"""Tests for warning classification against the ground-truth oracle."""

from __future__ import annotations

from repro.detectors.classify import classify_report
from repro.detectors.report import Report, Warning_, WarningKind
from repro.oracle import GroundTruth, WarningCategory
from repro.runtime.events import Frame


def warning_at(addr, fn="f"):
    return Warning_(
        kind=WarningKind.DATA_RACE,
        message="m",
        tid=0,
        step=1,
        stack=(Frame(fn, "a.cpp", 1),),
        addr=addr,
    )


class TestGroundTruth:
    def test_claim_and_lookup(self):
        truth = GroundTruth()
        truth.claim(100, 4, WarningCategory.FP_HW_LOCK, note="refcount")
        assert truth.category_of(102) is WarningCategory.FP_HW_LOCK
        assert truth.category_of(104) is WarningCategory.UNKNOWN

    def test_newest_claim_wins(self):
        truth = GroundTruth()
        truth.claim(100, 10, WarningCategory.FP_ALLOC_REUSE)
        truth.claim(100, 4, WarningCategory.TRUE_RACE, bug_id="B1")
        assert truth.category_of(101) is WarningCategory.TRUE_RACE
        assert truth.category_of(108) is WarningCategory.FP_ALLOC_REUSE

    def test_bug_ids(self):
        truth = GroundTruth()
        truth.claim(0, 1, WarningCategory.TRUE_RACE, bug_id="B1")
        truth.claim(5, 1, WarningCategory.TRUE_RACE, bug_id="B2")
        truth.claim(9, 1, WarningCategory.FP_HW_LOCK)
        assert truth.bug_ids() == {"B1", "B2"}

    def test_entries_filter(self):
        truth = GroundTruth()
        truth.claim(0, 1, WarningCategory.BENIGN)
        truth.claim(5, 1, WarningCategory.TRUE_RACE)
        assert len(truth.entries()) == 2
        assert len(truth.entries(WarningCategory.BENIGN)) == 1

    def test_category_fp_property(self):
        assert WarningCategory.FP_HW_LOCK.is_false_positive
        assert WarningCategory.FP_DESTRUCTOR.is_false_positive
        assert not WarningCategory.TRUE_RACE.is_false_positive
        assert not WarningCategory.BENIGN.is_false_positive


class TestClassification:
    def test_oracle_claim_wins(self):
        truth = GroundTruth()
        truth.claim(100, 1, WarningCategory.TRUE_RACE, bug_id="B7", note="stat ctr")
        report = Report()
        report.add(warning_at(100))
        classified = classify_report(report, truth)
        assert classified.total == 1
        item = classified.items[0]
        assert item.category is WarningCategory.TRUE_RACE
        assert item.bug_id == "B7"
        assert item.note == "stat ctr"

    def test_destructor_stack_heuristic(self):
        truth = GroundTruth()
        report = Report()
        report.add(warning_at(500, fn="Derived::~Derived"))
        classified = classify_report(report, truth)
        assert classified.items[0].category is WarningCategory.FP_DESTRUCTOR

    def test_unknown_fallback(self):
        classified = classify_report(
            _single_report(warning_at(500, fn="mystery")), GroundTruth()
        )
        assert classified.items[0].category is WarningCategory.UNKNOWN

    def test_counts_and_helpers(self):
        truth = GroundTruth()
        truth.claim(1, 1, WarningCategory.TRUE_RACE, bug_id="B1")
        truth.claim(2, 1, WarningCategory.FP_HW_LOCK)
        truth.claim(3, 1, WarningCategory.FP_HW_LOCK)
        report = Report()
        report.add(warning_at(1, fn="a"))
        report.add(warning_at(2, fn="b"))
        report.add(warning_at(3, fn="c"))
        classified = classify_report(report, truth)
        assert classified.true_races == 1
        assert classified.false_positives == 2
        assert classified.count(WarningCategory.FP_HW_LOCK) == 2
        assert classified.bug_ids_found() == {"B1"}
        assert len(classified.of(WarningCategory.FP_HW_LOCK)) == 2
        assert "fp-hardware-lock" in classified.format_summary()

    def test_empty_report(self):
        classified = classify_report(Report(), GroundTruth())
        assert classified.total == 0
        assert classified.counts == {}


def _single_report(warning):
    report = Report()
    report.add(warning)
    return report
