"""Tests for the lock-order-graph deadlock detector."""

from __future__ import annotations

from repro.detectors import LockGraphDetector
from repro.runtime import VM


def run_lg(program):
    det = LockGraphDetector()
    VM(detectors=(det,)).run(program)
    return det


class TestLockOrder:
    def test_consistent_order_is_silent(self):
        def prog(api):
            m1, m2 = api.mutex("A"), api.mutex("B")

            def w(a):
                for _ in range(3):
                    a.lock(m1)
                    a.lock(m2)
                    a.unlock(m2)
                    a.unlock(m1)

            t1, t2 = api.spawn(w), api.spawn(w)
            api.join(t1)
            api.join(t2)

        det = run_lg(prog)
        assert det.cycles_found == 0

    def test_inversion_reported_even_without_deadlock(self):
        """The run survives (sequential), but the order cycle is real."""

        def prog(api):
            m1, m2 = api.mutex("A"), api.mutex("B")
            api.lock(m1)
            api.lock(m2)
            api.unlock(m2)
            api.unlock(m1)
            api.lock(m2)
            api.lock(m1)
            api.unlock(m1)
            api.unlock(m2)

        det = run_lg(prog)
        assert det.cycles_found == 1
        w = det.report.warnings[0]
        assert w.kind == "lock-order-violation"
        assert "cycle" in w.message

    def test_cycle_reported_once(self):
        def prog(api):
            m1, m2 = api.mutex(), api.mutex()
            for _ in range(3):
                api.lock(m1)
                api.lock(m2)
                api.unlock(m2)
                api.unlock(m1)
                api.lock(m2)
                api.lock(m1)
                api.unlock(m1)
                api.unlock(m2)

        det = run_lg(prog)
        assert det.cycles_found == 1

    def test_three_lock_cycle(self):
        def prog(api):
            a_, b_, c_ = api.mutex("A"), api.mutex("B"), api.mutex("C")
            for first, second in ((a_, b_), (b_, c_), (c_, a_)):
                api.lock(first)
                api.lock(second)
                api.unlock(second)
                api.unlock(first)

        det = run_lg(prog)
        assert det.cycles_found == 1
        assert "lock0" in det.report.warnings[0].details["Cycle"]

    def test_nested_consistent_hierarchy_many_locks(self):
        def prog(api):
            locks = [api.mutex(f"L{i}") for i in range(5)]

            def w(a):
                for m in locks:
                    a.lock(m)
                for m in reversed(locks):
                    a.unlock(m)

            t1, t2 = api.spawn(w), api.spawn(w)
            api.join(t1)
            api.join(t2)

        det = run_lg(prog)
        assert det.cycles_found == 0

    def test_held_by_tracks_acquisition_stack(self):
        captured = []

        class Probe:
            def __init__(self, det):
                self.det = det

            def handle(self, event, vm):
                from repro.runtime.events import MemoryAccess

                if isinstance(event, MemoryAccess):
                    captured.append(self.det.held_by(event.tid))

        det = LockGraphDetector()
        probe = Probe(det)

        def prog(api):
            m1, m2 = api.mutex(), api.mutex()
            addr = api.malloc(1)
            api.lock(m1)
            api.lock(m2)
            api.store(addr, 1)
            api.unlock(m2)
            api.unlock(m1)

        VM(detectors=(det, probe)).run(prog)
        assert captured[-1] == [m1_id := 0, 1]

    def test_rwlocks_participate(self):
        def prog(api):
            rw = api.rwlock("R")
            m = api.mutex("M")
            api.rdlock(rw)
            api.lock(m)
            api.unlock(m)
            api.rw_unlock(rw)
            api.lock(m)
            api.wrlock(rw)
            api.rw_unlock(rw)
            api.unlock(m)

        det = run_lg(prog)
        assert det.cycles_found == 1


class TestGateLockFilter:
    """The gate-lock refinement: a common third lock excuses the cycle."""

    def _gated_program(self, api):
        gate = api.mutex("GATE")
        m1, m2 = api.mutex("A"), api.mutex("B")
        for first, second in ((m1, m2), (m2, m1)):
            api.lock(gate)
            api.lock(first)
            api.lock(second)
            api.unlock(second)
            api.unlock(first)
            api.unlock(gate)

    def test_gated_inversion_not_reported(self):
        det = LockGraphDetector()
        VM(detectors=(det,)).run(self._gated_program)
        assert det.cycles_found == 0
        assert det.gated_cycles == 1

    def test_filter_can_be_disabled(self):
        det = LockGraphDetector(gate_lock_filter=False)
        VM(detectors=(det,)).run(self._gated_program)
        assert det.cycles_found == 1

    def test_gate_must_guard_every_traversal(self):
        """If one traversal of an edge skipped the gate, the cycle can
        really deadlock and must be reported."""

        def prog(api):
            gate = api.mutex("GATE")
            m1, m2 = api.mutex("A"), api.mutex("B")
            # A -> B under the gate ...
            api.lock(gate)
            api.lock(m1)
            api.lock(m2)
            api.unlock(m2)
            api.unlock(m1)
            api.unlock(gate)
            # ... and A -> B again WITHOUT it: the gate no longer covers
            # the edge, so the later B -> A inversion is dangerous.
            api.lock(m1)
            api.lock(m2)
            api.unlock(m2)
            api.unlock(m1)
            api.lock(gate)
            api.lock(m2)
            api.lock(m1)
            api.unlock(m1)
            api.unlock(m2)
            api.unlock(gate)

        det = LockGraphDetector()
        VM(detectors=(det,)).run(prog)
        assert det.cycles_found == 1

    def test_partial_gate_does_not_excuse(self):
        """Gate held on one edge direction only: still reported."""

        def prog(api):
            gate = api.mutex("GATE")
            m1, m2 = api.mutex("A"), api.mutex("B")
            api.lock(gate)
            api.lock(m1)
            api.lock(m2)
            api.unlock(m2)
            api.unlock(m1)
            api.unlock(gate)
            api.lock(m2)  # no gate here
            api.lock(m1)
            api.unlock(m1)
            api.unlock(m2)

        det = LockGraphDetector()
        VM(detectors=(det,)).run(prog)
        assert det.cycles_found == 1


class TestBaselineContract:
    """Pin the current detector's observable contract — graph shape,
    edge witnesses, canonical-cycle dedup — before the predictive tier
    builds on it."""

    def test_telemetry_summary_counts_graph_shape(self):
        def prog(api):
            a_, b_, c_ = api.mutex("A"), api.mutex("B"), api.mutex("C")
            # Edges A->B, A->C, B->C; no cycle.
            api.lock(a_)
            api.lock(b_)
            api.lock(c_)
            api.unlock(c_)
            api.unlock(b_)
            api.unlock(a_)

        det = run_lg(prog)
        summary = det.telemetry_summary()
        assert summary == {
            "graph_nodes": 2,   # A and B have successors
            "graph_edges": 3,   # A->B, A->C, B->C
            "cycles_reported": 0,
            "cycles_gated": 0,
        }

    def test_gated_cycle_counts_in_summary(self):
        det = LockGraphDetector()
        VM(detectors=(det,)).run(TestGateLockFilter()._gated_program)
        assert det.telemetry_summary()["cycles_gated"] == 1
        assert det.telemetry_summary()["cycles_reported"] == 0

    def test_edge_witnesses_name_thread_and_site(self):
        """Each cycle edge is witnessed: which thread, which frame."""

        def prog(api):
            m1, m2 = api.mutex("A"), api.mutex("B")
            api.lock(m1)
            api.lock(m2)
            api.unlock(m2)
            api.unlock(m1)
            api.lock(m2)
            api.lock(m1)
            api.unlock(m1)
            api.unlock(m2)

        det = run_lg(prog)
        (w,) = det.report.warnings
        edge_keys = [k for k in w.details if k.startswith("Edge lock")]
        assert len(edge_keys) == 2
        assert "Edge lock0 -> lock1" in w.details
        assert "Edge lock1 -> lock0" in w.details
        for key in edge_keys:
            assert w.details[key].startswith("thread ")

    def test_cycle_dedup_is_rotation_invariant(self):
        """A->B->A observed first, then the B->A->B rotation: one
        report, whichever rotation closed the cycle."""

        def prog(api):
            m1, m2 = api.mutex("A"), api.mutex("B")
            for first, second in ((m1, m2), (m2, m1), (m1, m2), (m2, m1)):
                api.lock(first)
                api.lock(second)
                api.unlock(second)
                api.unlock(first)

        det = run_lg(prog)
        assert det.cycles_found == 1
        assert len(det.report.warnings) == 1

    def test_two_disjoint_cycles_both_reported(self):
        def prog(api):
            a_, b_ = api.mutex("A"), api.mutex("B")
            c_, d_ = api.mutex("C"), api.mutex("D")
            for first, second in ((a_, b_), (b_, a_), (c_, d_), (d_, c_)):
                api.lock(first)
                api.lock(second)
                api.unlock(second)
                api.unlock(first)

        det = run_lg(prog)
        assert det.cycles_found == 2

    def test_warning_carries_acquisition_stack_and_step(self):
        def prog(api):
            m1, m2 = api.mutex("A"), api.mutex("B")
            api.lock(m1)
            api.lock(m2)
            api.unlock(m2)
            api.unlock(m1)
            api.lock(m2)
            api.lock(m1)
            api.unlock(m1)
            api.unlock(m2)

        det = run_lg(prog)
        (w,) = det.report.warnings
        assert w.kind == "lock-order-violation"
        assert w.step > 0
        assert w.addr is None

    def test_release_without_acquire_is_tolerated(self):
        from repro.runtime.events import LockRelease

        det = LockGraphDetector()
        det._on_release(LockRelease(1, 1, lock_id=7))
        assert det.held_by(1) == []
