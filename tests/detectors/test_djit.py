"""Tests for the DJIT happens-before baseline (§2.2)."""

from __future__ import annotations

from repro.detectors import DjitDetector, HelgrindConfig, HelgrindDetector
from repro.runtime import VM, FixedOrderScheduler, RandomScheduler


def run_djit(program, *, scheduler=None, cond_hb=True):
    det = DjitDetector(cond_hb=cond_hb)
    VM(detectors=(det,), scheduler=scheduler).run(program)
    return det


def plain_race(api):
    addr = api.malloc(1)
    api.store(addr, 0)

    def w(a):
        with a.frame("inc", "x.cpp", 1):
            a.store(addr, a.load(addr) + 1)

    t1, t2 = api.spawn(w), api.spawn(w)
    api.join(t1)
    api.join(t2)


class TestBasicDetection:
    def test_unordered_writes_reported(self):
        det = run_djit(plain_race)
        assert det.report.location_count >= 1

    def test_mutex_protected_silent(self):
        def prog(api):
            addr = api.malloc(1)
            api.store(addr, 0)
            m = api.mutex()

            def w(a):
                for _ in range(5):
                    a.lock(m)
                    a.store(addr, a.load(addr) + 1)
                    a.unlock(m)

            ts = [api.spawn(w) for _ in range(3)]
            for t in ts:
                api.join(t)

        det = run_djit(prog, scheduler=RandomScheduler(3))
        assert det.report.location_count == 0

    def test_create_join_ordering_silent(self):
        def prog(api):
            addr = api.malloc(1)
            api.store(addr, 0)

            def w(a):
                a.store(addr, a.load(addr) + 1)

            t = api.spawn(w)
            api.join(t)
            api.store(addr, api.load(addr) + 1)

        det = run_djit(prog)
        assert det.report.location_count == 0

    def test_read_write_race_reported(self):
        def prog(api):
            addr = api.malloc(1)
            api.store(addr, 0)

            def reader(a):
                with a.frame("reader", "r.cpp", 1):
                    a.load(addr)

            def writer(a):
                with a.frame("writer", "w.cpp", 1):
                    a.store(addr, 1)

            t1, t2 = api.spawn(reader), api.spawn(writer)
            api.join(t1)
            api.join(t2)

        det = run_djit(prog)
        assert det.report.location_count >= 1

    def test_first_race_only_per_location(self):
        """DJIT 'detects only the first apparent data race' per word."""

        def prog(api):
            addr = api.malloc(1)
            api.store(addr, 0)

            def w(a):
                for _ in range(5):
                    a.store(addr, 1)

            t1, t2 = api.spawn(w), api.spawn(w)
            api.join(t1)
            api.join(t2)

        det = run_djit(prog)
        # One word -> at most one dynamic report.
        assert det.report.dynamic_count == 1


class TestSynchronisationVocabulary:
    def test_queue_handoff_silent(self):
        """Figure 11's pattern — DJIT sees the put/get order."""

        def prog(api):
            q = api.queue()

            def worker(a):
                while True:
                    msg = a.get(q)
                    if msg is None:
                        break
                    a.store(msg, a.load(msg) + 1)

            t = api.spawn(worker)
            for i in range(3):
                data = api.malloc(1)
                api.store(data, i)
                api.put(q, data)
            api.put(q, None)
            api.join(t)

        det = run_djit(prog)
        assert det.report.location_count == 0

    def test_semaphore_ordering_silent(self):
        def prog(api):
            data = api.malloc(1)
            sem = api.semaphore(0)

            def worker(a):
                a.sem_wait(sem)
                a.store(data, a.load(data) + 1)

            t = api.spawn(worker)
            api.store(data, 1)
            api.sem_post(sem)
            api.join(t)

        det = run_djit(prog)
        assert det.report.location_count == 0

    def test_barrier_ordering_silent(self):
        def prog(api):
            data = api.malloc(1)
            api.store(data, 0)
            bar = api.barrier(2)

            def worker(a):
                a.store(data, 1)  # phase 1: worker writes
                a.barrier_wait(bar)
                # phase 2: main writes

            t = api.spawn(worker)
            api.barrier_wait(bar)
            api.store(data, 2)
            api.join(t)

        det = run_djit(prog)
        assert det.report.location_count == 0

    def test_condvar_hb_switchable(self):
        def prog(api):
            data = api.malloc(1)
            api.store(data, 0)
            m = api.mutex()
            cv = api.condvar()
            flag = api.malloc(1)
            api.store(flag, 0)

            def worker(a):
                a.lock(m)
                while a.load(flag) == 0:
                    a.cond_wait(cv, m)
                a.unlock(m)
                a.store(data, 1)  # ordered only via the signal

            t = api.spawn(worker)
            api.store(data, 7)  # before the signal
            api.lock(m)
            api.store(flag, 1)
            api.cond_signal(cv)
            api.unlock(m)
            api.join(t)

        # With signal/wait ordering the writes are ordered...
        assert run_djit(prog, cond_hb=True).report.location_count == 0
        # ...without it (the paper's soundness stance) they are not —
        # note the mutex around `flag` does order flag itself.
        det = run_djit(prog, cond_hb=False)
        assert all(w.addr is not None for w in det.report.warnings)


class TestContainment:
    def test_djit_subset_of_lockset_on_ordered_run(self):
        """§2.2: DJIT reports a subset of the lock-set detector's races
        when the racy accesses happen to be ordered in this schedule."""

        def prog(api):
            addr = api.malloc(1, tag="racy-but-ordered")
            api.store(addr, 0)
            sem = api.semaphore(0)

            def w(a):
                with a.frame("unlocked_write", "x.cpp", 5):
                    a.store(addr, 1)  # no lock!
                a.sem_post(sem)

            t = api.spawn(w)
            api.sem_wait(sem)  # orders the accesses in *this* run
            with api.frame("unlocked_write_main", "x.cpp", 9):
                api.store(addr, 2)  # no lock!
            api.join(t)

        djit = DjitDetector()
        hg = HelgrindDetector(HelgrindConfig.hwlc())
        VM(detectors=(djit, hg)).run(prog)
        # The lock-set approach flags the discipline violation...
        assert hg.report.location_count >= 1
        # ...but DJIT stays silent: the accesses were semaphore-ordered.
        assert djit.report.location_count == 0


class TestAtomicAwareness:
    """Bus-locked (atomic) accesses under modern vs classic semantics."""

    def _atomic_counter(self, api):
        counter = api.malloc(1, tag="refcount")
        api.store(counter, 0)

        def bump(a):
            with a.frame("bump", "rc.cpp", 5):
                a.atomic_add(counter, 1)

        t1, t2 = api.spawn(bump), api.spawn(bump)
        api.join(t1)
        api.join(t2)
        return api.load(counter)

    def test_atomic_atomic_not_a_race_by_default(self):
        det = run_djit(self._atomic_counter)
        assert det.report.location_count == 0

    def test_classic_djit_flags_unordered_atomics(self):
        """The original algorithm predates the atomics-don't-race rule."""
        det = DjitDetector(atomic_aware=False)
        VM(detectors=(det,)).run(self._atomic_counter)
        assert det.report.location_count >= 1

    def test_plain_read_vs_atomic_write_still_races(self):
        """TSan-faithful: mixing plain and atomic accesses *is* a race
        (which is why _M_grab's plain shareability check is genuinely
        suspicious to a happens-before detector)."""

        def prog(api):
            counter = api.malloc(1)
            api.store(counter, 0)

            def plain_reader(a):
                with a.frame("check", "rc.cpp", 9):
                    a.load(counter)  # plain

            def atomic_writer(a):
                a.atomic_add(counter, 1)

            t1, t2 = api.spawn(plain_reader), api.spawn(atomic_writer)
            api.join(t1)
            api.join(t2)

        det = run_djit(prog)
        assert det.report.location_count >= 1

    def test_hybrid_is_atomic_aware_too(self):
        from repro.detectors import HybridDetector

        det = HybridDetector()
        VM(detectors=(det,)).run(self._atomic_counter)
        assert det.report.location_count == 0
