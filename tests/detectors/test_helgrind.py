"""Scenario tests for the full Helgrind detector and its configurations.

Each scenario is a guest program reproducing one of the paper's access
patterns; assertions check which configurations warn and which stay
silent — the qualitative content of §3.1 and §4.2.
"""

from __future__ import annotations

import pytest

from repro.detectors import (
    BUS_LOCK_ID,
    BusLockModel,
    HelgrindConfig,
    HelgrindDetector,
)
from repro.runtime import VM, RandomScheduler


def run_with(config, program, *, scheduler=None, suppressions=None):
    det = HelgrindDetector(config, suppressions=suppressions)
    vm = VM(detectors=(det,), scheduler=scheduler)
    vm.run(program)
    return det


# ----------------------------------------------------------------------
# Guest scenarios
# ----------------------------------------------------------------------


def plain_race(api):
    addr = api.malloc(1, tag="shared")
    api.store(addr, 0)

    def w(a):
        with a.frame("increment", "counter.cpp", 12):
            a.store(addr, a.load(addr) + 1)

    t1, t2 = api.spawn(w), api.spawn(w)
    api.join(t1)
    api.join(t2)


def mutex_protected(api):
    addr = api.malloc(1)
    api.store(addr, 0)
    m = api.mutex()

    def w(a):
        for _ in range(5):
            a.lock(m)
            a.store(addr, a.load(addr) + 1)
            a.unlock(m)

    ts = [api.spawn(w) for _ in range(3)]
    for t in ts:
        api.join(t)


def refcount_string(api):
    """Figure 8's stringtest: plain read + LOCKed increment of a refcount."""
    rc = api.malloc(1, tag="string.rep")
    api.store(rc, 1)

    def copier(a):
        with a.frame("_M_grab", "basic_string.h", 183):
            a.load(rc)  # plain is-shared check (no LOCK prefix)
            a.atomic_add(rc, 1)  # LOCK add

    t1, t2 = api.spawn(copier), api.spawn(copier)
    api.join(t1)
    api.join(t2)


def destructor_pattern(api):
    """§4.2.1: a shared object is deleted while its users are still alive.

    Two worker threads use the object (virtual calls read the vptr at
    ``obj+0``) under a mutex and then move on to other work *without
    being joined* — the server situation.  The deleting thread knows by
    protocol that the users are done, but Helgrind cannot see that, so
    the header stays SHARED and the compiler-generated vptr rewrites in
    the destructor chain drain the candidate set.
    """
    obj = api.malloc(4, tag="Derived")
    api.store(obj, "vptr-Derived")
    for i in range(1, 4):
        api.store(obj + i, 0)
    m = api.mutex()

    def user(a):
        a.lock(m)
        a.load(obj)  # virtual dispatch reads the vptr
        a.load(obj + 1)
        a.unlock(m)
        a.sleep(30)  # stays alive, serving other requests

    api.spawn(user)
    api.spawn(user)
    api.sleep(10)  # protocol: by now the users are done with obj
    # delete: annotated (HG_DESTRUCT) then destructor chain writes header.
    api.hg_destruct(obj, 4)
    with api.frame("Derived::~Derived", "msg.cpp", 40):
        api.store(obj, "vptr-Base")  # compiler-generated vptr rewrite
    with api.frame("Base::~Base", "msg.cpp", 10):
        api.store(obj, "vptr-dead")
    api.free(obj)


def rwlock_discipline(api):
    rw = api.rwlock()
    addr = api.malloc(1)
    api.store(addr, 0)

    def writer(a):
        for _ in range(3):
            a.wrlock(rw)
            a.store(addr, a.load(addr) + 1)
            a.rw_unlock(rw)

    def reader(a):
        for _ in range(3):
            a.rdlock(rw)
            a.load(addr)
            a.rw_unlock(rw)

    ts = [api.spawn(writer), api.spawn(reader), api.spawn(reader)]
    for t in ts:
        api.join(t)


def rwlock_read_mode_write(api):
    """Writing while holding the rwlock only in read mode is a race."""
    rw = api.rwlock()
    addr = api.malloc(1)
    api.store(addr, 0)

    def bad(a):
        with a.frame("bad_writer", "cache.cpp", 77):
            a.rdlock(rw)
            a.store(addr, a.load(addr) + 1)
            a.rw_unlock(rw)

    t1, t2 = api.spawn(bad), api.spawn(bad)
    api.join(t1)
    api.join(t2)


def thread_pool(api):
    q = api.queue()

    def worker(a):
        while True:
            msg = a.get(q)
            if msg is None:
                break
            with a.frame("process", "pool.cpp", 30):
                a.store(msg, a.load(msg) + 1)

    t = api.spawn(worker)
    for i in range(3):
        data = api.malloc(1, tag="job")
        with api.frame("setup", "pool.cpp", 10):
            api.store(data, i)
        api.put(q, data)
    api.put(q, None)
    api.join(t)


# ----------------------------------------------------------------------


class TestPlainRaces:
    @pytest.mark.parametrize(
        "config",
        [
            HelgrindConfig.original(),
            HelgrindConfig.hwlc(),
            HelgrindConfig.hwlc_dr(),
            HelgrindConfig.extended(),
        ],
        ids=lambda c: c.name,
    )
    def test_every_config_finds_the_real_race(self, config):
        det = run_with(config, plain_race)
        assert det.report.location_count == 1
        warning = det.report.warnings[0]
        assert warning.site.function == "increment"

    @pytest.mark.parametrize(
        "config",
        [HelgrindConfig.original(), HelgrindConfig.hwlc_dr()],
        ids=lambda c: c.name,
    )
    def test_mutex_discipline_is_silent(self, config):
        det = run_with(config, mutex_protected)
        assert det.report.location_count == 0

    def test_race_warning_contents(self):
        det = run_with(HelgrindConfig.original(), plain_race)
        w = det.report.warnings[0]
        assert w.kind == "possible-data-race"
        assert "Possible data race" in w.message
        assert "Previous state" in w.details
        text = w.format()
        assert "increment (counter.cpp:12)" in text


class TestHardwareBusLock:
    """§3.1 improvement 1 / §4.2.2 — the HWLC experiments."""

    def test_original_model_warns_on_refcount(self):
        det = run_with(HelgrindConfig.original(), refcount_string)
        assert det.report.location_count == 1
        assert det.report.warnings[0].site.function == "_M_grab"

    def test_hwlc_model_is_silent_on_refcount(self):
        det = run_with(HelgrindConfig.hwlc(), refcount_string)
        assert det.report.location_count == 0

    def test_hwlc_still_catches_plain_races(self):
        det = run_with(HelgrindConfig.hwlc(), plain_race)
        assert det.report.location_count == 1

    def test_rwlock_discipline_silent_both_models(self):
        for config in (HelgrindConfig.original(), HelgrindConfig.hwlc()):
            det = run_with(config, rwlock_discipline)
            assert det.report.location_count == 0, config.name

    def test_write_under_read_mode_caught(self):
        det = run_with(HelgrindConfig.hwlc(), rwlock_read_mode_write)
        assert det.report.location_count == 1

    def test_bus_lock_id_in_prev_state_rendering(self):
        det = run_with(HelgrindConfig.original(), refcount_string)
        text = det.report.warnings[0].format()
        assert "Previous state" in text


class TestDestructorAnnotation:
    """§3.1 improvement 2 / §4.2.1 — the DR experiments."""

    def test_unannotated_configs_warn_on_destructor(self):
        for config in (HelgrindConfig.original(), HelgrindConfig.hwlc()):
            det = run_with(config, destructor_pattern)
            # One location per destructor-chain frame that rewrites the
            # header (~Derived's explicit write and ~Base's rewrite).
            assert det.report.location_count >= 1, config.name
            assert all("~" in w.site.function for w in det.report.warnings)

    def test_dr_config_is_silent(self):
        det = run_with(HelgrindConfig.hwlc_dr(), destructor_pattern)
        assert det.report.location_count == 0

    def test_other_thread_during_destruction_still_caught(self):
        """The annotation must not mask true cross-thread touches (§3.1)."""

        def program(api):
            obj = api.malloc(2, tag="Victim")
            api.store(obj, "vptr")
            api.store(obj + 1, 0)
            m = api.mutex()

            def user(a):
                a.sleep(5)
                with a.frame("late_user", "bad.cpp", 9):
                    a.store(obj + 1, 42)  # touches during destruction!

            t = api.spawn(user)
            api.lock(m)
            api.load(obj + 1)
            api.unlock(m)
            # destroy while the other thread is still around
            api.hg_destruct(obj, 2)
            with api.frame("Victim::~Victim", "bad.cpp", 20):
                api.store(obj, "vptr-dead")
            api.sleep(10)
            api.join(t)

        det = run_with(HelgrindConfig.hwlc_dr(), program)
        assert det.report.location_count >= 1
        assert any(w.site.function == "late_user" for w in det.report.warnings)

    def test_ignored_when_config_does_not_honor(self):
        """ORIGINAL treats HG_DESTRUCT as an unknown no-op request."""
        det = run_with(HelgrindConfig.original(), destructor_pattern)
        assert det.report.location_count >= 1
        assert all("~" in w.site.function for w in det.report.warnings)


class TestOwnershipTransfer:
    def test_thread_per_request_silent_with_segments(self):
        def handoff(api):
            data = api.malloc(4, tag="msg")
            for i in range(4):
                api.store(data + i, i)

            def worker(a):
                for i in range(4):
                    a.store(data + i, a.load(data + i) + 1)

            t = api.spawn(worker)
            api.join(t)
            for i in range(4):
                api.load(data + i)

        det = run_with(HelgrindConfig.original(), handoff)
        assert det.report.location_count == 0

    def test_thread_pool_warns_without_queue_hb(self):
        """Figure 11: the lock-set algorithm is unaware of put/get order."""
        det = run_with(HelgrindConfig.hwlc_dr(), thread_pool)
        assert det.report.location_count >= 1

    def test_thread_pool_silent_with_queue_hb(self):
        """The future-work extension closes the Figure 11 class."""
        det = run_with(HelgrindConfig.extended(), thread_pool)
        assert det.report.location_count == 0

    def test_extended_still_catches_real_races(self):
        det = run_with(HelgrindConfig.extended(), plain_race)
        assert det.report.location_count == 1

    def test_semaphore_hb_in_extended(self):
        def sem_handoff(api):
            data = api.malloc(1, tag="boxed")
            sem = api.semaphore(0)

            def worker(a):
                a.sem_wait(sem)
                a.store(data, a.load(data) + 1)

            t = api.spawn(worker)
            api.yield_()
            api.store(data, 1)  # initialise...
            api.sem_post(sem)  # ...then publish
            api.join(t)

        assert run_with(HelgrindConfig.extended(), sem_handoff).report.location_count == 0
        # Plain hwlc+dr does not know sem ordering. The data was written
        # by main *after* spawning, so segment transfer cannot apply.
        assert run_with(HelgrindConfig.hwlc_dr(), sem_handoff).report.location_count >= 1


class TestClientRequests:
    def test_benign_race_suppresses(self):
        def program(api):
            addr = api.malloc(1, tag="stats")
            api.store(addr, 0)
            api.benign_race(addr, 1)

            def w(a):
                a.store(addr, a.load(addr) + 1)

            t1, t2 = api.spawn(w), api.spawn(w)
            api.join(t1)
            api.join(t2)

        det = run_with(HelgrindConfig.original(), program)
        assert det.report.location_count == 0

    def test_hg_clean_forgets_state(self):
        def program(api):
            addr = api.malloc(1, tag="pooled")
            api.store(addr, 0)

            def w(a):
                a.load(addr)

            t = api.spawn(w)
            api.join(t)
            # Logical free + realloc inside a guest pool:
            api.hg_clean(addr, 1)
            # New owner initialises without locks — fine after clean.
            def w2(a):
                a.store(addr, 7)

            t2 = api.spawn(w2)
            api.join(t2)

        det = run_with(HelgrindConfig.original(), program)
        assert det.report.location_count == 0


class TestConfigs:
    def test_config_factories_names(self):
        assert HelgrindConfig.original().name == "original"
        assert HelgrindConfig.hwlc().name == "hwlc"
        assert HelgrindConfig.hwlc_dr().name == "hwlc+dr"
        assert HelgrindConfig.extended().queue_hb
        assert not HelgrindConfig.raw_eraser().use_states

    def test_with_override(self):
        cfg = HelgrindConfig.hwlc().with_(honor_destruct=True)
        assert cfg.bus_lock_model is BusLockModel.RWLOCK
        assert cfg.honor_destruct

    def test_locks_held_introspection(self):
        def program(api):
            m = api.mutex()
            api.lock(m)
            api.store(api.malloc(1), 0)
            api.unlock(m)

        det = run_with(HelgrindConfig.original(), program)
        assert det.locks_held(0) == frozenset()

    def test_access_checks_counted(self):
        det = run_with(HelgrindConfig.original(), mutex_protected)
        assert det.access_checks > 0

    def test_bus_lock_id_reserved(self):
        assert BUS_LOCK_ID == -1


class TestDedup:
    def test_same_site_reported_once(self):
        def program(api):
            addr = api.malloc(1)
            api.store(addr, 0)

            def w(a):
                with a.frame("hot", "loop.cpp", 3):
                    for _ in range(10):
                        a.store(addr, a.load(addr) + 1)

            ts = [api.spawn(w) for _ in range(3)]
            for t in ts:
                api.join(t)

        det = run_with(
            HelgrindConfig.original(), program, scheduler=RandomScheduler(5)
        )
        assert det.report.location_count <= 2  # read site + write site max
        assert det.report.dynamic_count >= det.report.location_count


class TestAccessHistory:
    """The --history-level-style conflict history (opt-in extension)."""

    def test_warning_names_the_other_side(self):
        config = HelgrindConfig.hwlc().with_(access_history=True)
        det = run_with(config, plain_race)
        assert det.report.location_count >= 1
        conflict_lines = [
            w.details.get("Conflicts with", "") for w in det.report.warnings
        ]
        assert any("previous" in line and "thread" in line for line in conflict_lines)
        # Both sides of the race are in the same function here.
        assert any("increment" in line for line in conflict_lines)

    def test_off_by_default(self):
        det = run_with(HelgrindConfig.hwlc(), plain_race)
        assert all("Conflicts with" not in w.details for w in det.report.warnings)

    def test_history_does_not_change_counts(self):
        plain = run_with(HelgrindConfig.original(), refcount_string)
        history = run_with(
            HelgrindConfig.original().with_(access_history=True), refcount_string
        )
        assert plain.report.location_count == history.report.location_count
