"""Tests for the high-level (view-consistency) race detector."""

from __future__ import annotations

from repro.detectors import HelgrindConfig, HelgrindDetector
from repro.detectors.highlevel import HighLevelRaceDetector, _maximal_views
from repro.runtime import VM


def person_record_program(api, *, atomic_writer: bool):
    """§2.1's motivating example: a (date-of-birth, age) record.

    The reader always takes both fields in one critical section.  The
    writer updates them in one section (atomic_writer=True, consistent)
    or in two separate sections (False — the high-level race: the
    reader can observe a new dob with a stale age).
    """
    dob = api.malloc(1, tag="person.dob")
    age = api.malloc(1, tag="person.age")
    api.store(dob, 1970)
    api.store(age, 37)
    m = api.mutex("person-guard")

    def writer(a):
        with a.frame("update_person", "person.cpp", 20):
            if atomic_writer:
                a.lock(m)
                a.store(dob, 1980)
                a.store(age, 27)
                a.unlock(m)
            else:
                a.lock(m)
                a.store(dob, 1980)  # setDateOfBirth
                a.unlock(m)
                a.yield_()
                a.lock(m)
                a.store(age, 27)  # setAge
                a.unlock(m)

    def reader(a):
        with a.frame("read_person", "person.cpp", 40):
            a.lock(m)
            a.load(dob)
            a.load(age)
            a.unlock(m)

    t1, t2 = api.spawn(writer), api.spawn(reader)
    api.join(t1)
    api.join(t2)


def run_highlevel(program, **kw):
    det = HighLevelRaceDetector()
    VM(detectors=(det,)).run(lambda api: program(api, **kw))
    return det.finalize()


class TestPersonRecordExample:
    def test_split_writer_is_inconsistent(self):
        """The §2.1 example is flagged as a high-level race."""
        report = run_highlevel(person_record_program, atomic_writer=False)
        assert report.location_count >= 1
        warning = report.warnings[0]
        assert warning.kind == "high-level-data-race"
        assert "incomparable pieces" in warning.details["Views"]

    def test_atomic_writer_is_consistent(self):
        report = run_highlevel(person_record_program, atomic_writer=True)
        assert report.location_count == 0

    def test_lockset_detector_is_blind_to_it(self):
        """§2.1: every single access IS properly protected, so the
        lock-set algorithm (rightly, by its definition) stays silent —
        the whole point of the high-level-race notion."""
        det = HelgrindDetector(HelgrindConfig.hwlc_dr())
        VM(detectors=(det,)).run(
            lambda api: person_record_program(api, atomic_writer=False)
        )
        assert det.report.location_count == 0


class TestViewMechanics:
    def test_views_recorded_per_section(self):
        def program(api):
            a_addr = api.malloc(1)
            b_addr = api.malloc(1)
            api.store(a_addr, 0)
            api.store(b_addr, 0)
            m = api.mutex()

            def worker(a):
                a.lock(m)
                a.store(a_addr, 1)
                a.unlock(m)
                a.lock(m)
                a.store(b_addr, 1)
                a.unlock(m)

            t = api.spawn(worker)
            api.join(t)
            return a_addr, b_addr

        det = HighLevelRaceDetector()
        vm = VM(detectors=(det,))
        a_addr, b_addr = vm.run(program)
        worker_tid = 1
        views = det.views_of(worker_tid, 0)
        assert frozenset({a_addr}) in views
        assert frozenset({b_addr}) in views

    def test_nested_locks_contribute_to_both_views(self):
        def program(api):
            addr = api.malloc(1)
            api.store(addr, 0)
            outer, inner = api.mutex(), api.mutex()
            api.lock(outer)
            api.lock(inner)
            api.load(addr)
            api.unlock(inner)
            api.unlock(outer)
            return addr

        det = HighLevelRaceDetector()
        vm = VM(detectors=(det,))
        addr = vm.run(program)
        assert det.views_of(0, 0) == [frozenset({addr})]
        assert det.views_of(0, 1) == [frozenset({addr})]

    def test_empty_sections_ignored(self):
        def program(api):
            m = api.mutex()
            api.lock(m)
            api.unlock(m)

        det = HighLevelRaceDetector()
        VM(detectors=(det,)).run(program)
        assert det.views_of(0, 0) == []

    def test_single_thread_never_inconsistent(self):
        def program(api):
            x, y = api.malloc(1), api.malloc(1)
            api.store(x, 0)
            api.store(y, 0)
            m = api.mutex()
            api.lock(m)
            api.load(x)
            api.load(y)
            api.unlock(m)
            api.lock(m)
            api.load(x)
            api.unlock(m)
            api.lock(m)
            api.load(y)
            api.unlock(m)

        det = HighLevelRaceDetector()
        VM(detectors=(det,)).run(program)
        assert det.finalize().location_count == 0

    def test_chain_overlaps_are_consistent(self):
        """Subsets forming a chain ({x} ⊆ {x,y}) are fine."""

        def program(api):
            x, y = api.malloc(1), api.malloc(1)
            api.store(x, 0)
            api.store(y, 0)
            m = api.mutex()

            def both(a):
                a.lock(m)
                a.load(x)
                a.load(y)
                a.unlock(m)

            def just_x(a):
                a.lock(m)
                a.load(x)
                a.unlock(m)

            t1, t2 = api.spawn(both), api.spawn(just_x)
            api.join(t1)
            api.join(t2)

        det = HighLevelRaceDetector()
        VM(detectors=(det,)).run(program)
        assert det.finalize().location_count == 0

    def test_finalize_idempotent(self):
        report = run_highlevel(person_record_program, atomic_writer=False)
        det = HighLevelRaceDetector()
        det._finalized = True
        assert det.finalize().location_count == 0
        # and re-finalizing the populated one does not duplicate:
        n = report.location_count
        assert n == len(report.warnings)

    def test_write_only_tracking(self):
        """track_reads=False restricts views to written locations."""

        def program(api):
            x = api.malloc(1)
            api.store(x, 0)
            m = api.mutex()
            api.lock(m)
            api.load(x)
            api.unlock(m)
            return x

        det = HighLevelRaceDetector(track_reads=False)
        VM(detectors=(det,)).run(program)
        assert det.views_of(0, 0) == []


class TestMaximalViews:
    def test_maximal_selection(self):
        views = [frozenset({1}), frozenset({1, 2}), frozenset({3})]
        maximal = set(_maximal_views(views))
        assert maximal == {frozenset({1, 2}), frozenset({3})}

    def test_duplicates_collapse(self):
        views = [frozenset({1}), frozenset({1})]
        assert _maximal_views(views) == [frozenset({1})]
