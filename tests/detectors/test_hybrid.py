"""Tests for the hybrid lock-set × happens-before detector."""

from __future__ import annotations

from repro.detectors import HelgrindConfig, HelgrindDetector, HybridDetector
from repro.runtime import VM, RandomScheduler


def run_hybrid(program, **kw):
    det = HybridDetector(**kw)
    VM(detectors=(det,)).run(program)
    return det


class TestConfirmation:
    def test_concurrent_unlocked_writes_confirmed(self):
        def prog(api):
            addr = api.malloc(1)
            api.store(addr, 0)

            def w(a):
                with a.frame("inc", "x.cpp", 1):
                    a.store(addr, a.load(addr) + 1)

            t1, t2 = api.spawn(w), api.spawn(w)
            api.join(t1)
            api.join(t2)

        det = run_hybrid(prog)
        assert det.report.location_count >= 1
        assert "Confirmed" in det.report.warnings[0].details

    def test_mutex_protected_silent(self):
        def prog(api):
            addr = api.malloc(1)
            api.store(addr, 0)
            m = api.mutex()

            def w(a):
                a.lock(m)
                a.store(addr, a.load(addr) + 1)
                a.unlock(m)

            ts = [api.spawn(w) for _ in range(3)]
            for t in ts:
                api.join(t)

        det = run_hybrid(prog)
        assert det.report.location_count == 0


class TestVeto:
    def test_ordered_discipline_violation_vetoed(self):
        """Lock-set nominates, HB vetoes: accesses were semaphore-ordered."""

        def prog(api):
            addr = api.malloc(1)
            api.store(addr, 0)
            sem = api.semaphore(0)

            def w(a):
                a.store(addr, 1)  # unlocked
                a.sem_post(sem)

            t = api.spawn(w)
            api.sem_wait(sem)
            api.store(addr, 2)  # unlocked but ordered
            api.join(t)

        det = run_hybrid(prog)
        assert det.report.location_count == 0
        assert det.vetoed >= 1

    def test_thread_pool_handoff_vetoed(self):
        """Figure 11: hybrid kills the ownership-transfer FP class."""

        def prog(api):
            q = api.queue()

            def worker(a):
                while True:
                    msg = a.get(q)
                    if msg is None:
                        break
                    a.store(msg, a.load(msg) + 1)

            t = api.spawn(worker)
            for i in range(3):
                data = api.malloc(1)
                api.store(data, i)
                api.put(q, data)
            api.put(q, None)
            api.join(t)

        det = run_hybrid(prog)
        assert det.report.location_count == 0

    def test_unlatch_allows_later_confirmation(self):
        """A vetoed word must still be reportable when a genuinely
        concurrent access arrives later."""

        def prog(api):
            addr = api.malloc(1)
            api.store(addr, 0)
            sem = api.semaphore(0)

            def ordered_writer(a):
                a.store(addr, 1)
                a.sem_post(sem)

            t = api.spawn(ordered_writer)
            api.sem_wait(sem)
            api.store(addr, 2)  # nominated, vetoed (ordered)
            api.join(t)

            def racer(a):
                with a.frame("racer", "x.cpp", 9):
                    a.store(addr, 3)

            r1, r2 = api.spawn(racer), api.spawn(racer)
            api.join(r1)
            api.join(r2)

        det = run_hybrid(prog)
        assert det.report.location_count >= 1


class TestComparisonWithPureLockset:
    def test_hybrid_reports_subset_of_lockset(self):
        def prog(api):
            # Mix: one true race, one ordered discipline violation.
            racy = api.malloc(1, tag="racy")
            api.store(racy, 0)
            ordered = api.malloc(1, tag="ordered")
            api.store(ordered, 0)
            sem = api.semaphore(0)

            def racer(a):
                with a.frame("racer", "a.cpp", 1):
                    a.store(racy, a.load(racy) + 1)

            def ow(a):
                with a.frame("ordered_writer", "b.cpp", 1):
                    a.store(ordered, 1)
                a.sem_post(sem)

            t1, t2, t3 = api.spawn(racer), api.spawn(racer), api.spawn(ow)
            api.sem_wait(sem)
            with api.frame("ordered_writer_main", "b.cpp", 9):
                api.store(ordered, 2)
            api.join(t1)
            api.join(t2)
            api.join(t3)

        hybrid = HybridDetector()
        lockset = HelgrindDetector(HelgrindConfig.hwlc())
        VM(detectors=(hybrid, lockset)).run(prog)
        hybrid_addrs = {w.addr for w in hybrid.report}
        lockset_addrs = {w.addr for w in lockset.report}
        assert hybrid_addrs <= lockset_addrs
        assert len(lockset_addrs) > len(hybrid_addrs)  # the vetoed one

    def test_custom_config_accepted(self):
        det = HybridDetector(HelgrindConfig.original().with_(name="hyb"))
        assert det.config.name == "hyb"
