"""Tests for the Eraser lock-set state machine (paper Figure 1, §2.3.2)."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.detectors.lockset import LocksetMachine, WordState
from repro.detectors.segments import SegmentGraph

L1 = frozenset({1})
L2 = frozenset({2})
L12 = frozenset({1, 2})
NONE = frozenset()


def machine(**kw) -> LocksetMachine:
    return LocksetMachine(SegmentGraph(), **kw)


def touch(m, addr, tid, write, any_=NONE, wr=None):
    return m.access(
        addr, tid, is_write=write, locks_any=any_, locks_write=wr if wr is not None else any_
    )


class TestFigure1States:
    def test_new_to_exclusive_on_first_touch(self):
        m = machine()
        assert m.state_of(100) is WordState.NEW
        out = touch(m, 100, 0, write=True)
        assert not out.race
        assert m.state_of(100) is WordState.EXCLUSIVE

    def test_owner_can_init_without_locks(self):
        """Initialisation by the allocating thread never warns."""
        m = machine()
        for _ in range(10):
            assert not touch(m, 100, 0, write=True).race
        assert m.state_of(100) is WordState.EXCLUSIVE

    def test_second_thread_read_enters_shared(self):
        m = machine()
        touch(m, 100, 0, write=True)
        out = touch(m, 100, 1, write=False)
        assert not out.race
        assert m.state_of(100) is WordState.SHARED

    def test_read_shared_never_warns(self):
        """Init-once, read-by-everyone data needs no locks (Fig 1)."""
        m = machine()
        touch(m, 100, 0, write=True)  # init
        for tid in range(1, 6):
            assert not touch(m, 100, tid, write=False).race
        assert m.state_of(100) is WordState.SHARED

    def test_unlocked_write_after_sharing_warns(self):
        m = machine()
        touch(m, 100, 0, write=True)
        touch(m, 100, 1, write=False)
        out = touch(m, 100, 2, write=True)
        assert out.race
        assert m.state_of(100) is WordState.RACY

    def test_locked_discipline_never_warns(self):
        m = machine()
        for tid in (0, 1, 0, 1, 2):
            assert not touch(m, 100, tid, write=True, any_=L1).race
        assert m.state_of(100) is WordState.SHARED_MODIFIED

    def test_lockset_is_intersection(self):
        m = machine()
        touch(m, 100, 0, write=True, any_=L12)
        out1 = touch(m, 100, 1, write=True, any_=L12)
        assert out1.lockset == L12
        out2 = touch(m, 100, 2, write=True, any_=L1)
        assert out2.lockset == L1
        out3 = touch(m, 100, 1, write=True, any_=L2)
        assert out3.race  # {1} ∩ {2} = {}

    def test_read_in_shared_modified_warns_on_empty(self):
        m = machine()
        touch(m, 100, 0, write=True)
        touch(m, 100, 1, write=True, any_=L1)  # SHARED_MODIFIED, C={1}
        out = touch(m, 100, 2, write=False, any_=NONE)
        assert out.race

    def test_racy_word_reports_once(self):
        m = machine()
        touch(m, 100, 0, write=True)
        touch(m, 100, 1, write=True)  # race
        out = touch(m, 100, 2, write=True)
        assert not out.race  # RACY latch

    def test_prev_state_reported(self):
        m = machine()
        touch(m, 100, 0, write=False)
        out = touch(m, 100, 1, write=False)
        assert out.prev_state is WordState.EXCLUSIVE


class TestReadWriteModes:
    """Eraser's rw refinement: reads check any-mode, writes write-mode."""

    def test_rwlock_readers_plus_locked_writer_ok(self):
        m = machine()
        # Writer holds lock 1 in write mode; readers in read mode.
        touch(m, 100, 0, write=True, any_=L1, wr=L1)
        assert not touch(m, 100, 1, write=False, any_=L1, wr=NONE).race
        assert not touch(m, 100, 0, write=True, any_=L1, wr=L1).race

    def test_write_under_read_mode_only_warns(self):
        """Holding the rwlock only for reading does not license writes."""
        m = machine()
        touch(m, 100, 0, write=True, any_=L1, wr=L1)
        touch(m, 100, 1, write=False, any_=L1, wr=NONE)
        out = touch(m, 100, 1, write=True, any_=L1, wr=NONE)
        assert out.race


class TestDelayedInitialisation:
    """§4.3: the lock-set starts only when sharing starts — the false-
    negative mechanism the paper documents."""

    def test_unlocked_first_writer_hidden_by_locked_second(self):
        m = machine()
        touch(m, 100, 0, write=True, any_=NONE)  # unlocked write (EXCLUSIVE)
        out = touch(m, 100, 1, write=True, any_=L1)  # locked write initialises C={1}
        assert not out.race  # the earlier unlocked write is forgotten

    def test_opposite_order_is_caught(self):
        m = machine()
        touch(m, 100, 1, write=True, any_=L1)
        out = touch(m, 100, 0, write=True, any_=NONE)
        assert out.race  # C = {1} ∩ {} = {}


class TestSegmentTransfer:
    def test_create_handoff_stays_exclusive(self):
        """Figure 10: parent inits, worker uses — no sharing."""
        g = SegmentGraph()
        m = LocksetMachine(g)
        g.current(0)
        m.access(100, 0, is_write=True, locks_any=NONE, locks_write=NONE)
        g.on_create(0, 1)
        out = m.access(100, 1, is_write=True, locks_any=NONE, locks_write=NONE)
        assert not out.race
        assert m.state_of(100) is WordState.EXCLUSIVE

    def test_join_handoff_back_to_parent(self):
        g = SegmentGraph()
        m = LocksetMachine(g)
        g.current(0)
        m.access(100, 0, is_write=True, locks_any=NONE, locks_write=NONE)
        g.on_create(0, 1)
        m.access(100, 1, is_write=True, locks_any=NONE, locks_write=NONE)
        g.on_finish(1)
        g.on_join(0, 1)
        out = m.access(100, 0, is_write=True, locks_any=NONE, locks_write=NONE)
        assert not out.race
        assert m.state_of(100) is WordState.EXCLUSIVE

    def test_concurrent_segment_does_share(self):
        g = SegmentGraph()
        m = LocksetMachine(g)
        g.current(0)
        m.access(100, 0, is_write=True, locks_any=NONE, locks_write=NONE)
        g.on_create(0, 1)
        # Parent writes again (post-create segment) then child touches:
        # the child is ordered after the *pre*-create segment only.
        m.access(100, 0, is_write=True, locks_any=NONE, locks_write=NONE)
        out = m.access(100, 1, is_write=True, locks_any=NONE, locks_write=NONE)
        assert out.race  # concurrent unlocked writes

    def test_disabled_transfer_shares_on_second_thread(self):
        g = SegmentGraph()
        m = LocksetMachine(g, segment_transfer=False)
        g.current(0)
        m.access(100, 0, is_write=True, locks_any=NONE, locks_write=NONE)
        g.on_create(0, 1)
        out = m.access(100, 1, is_write=False, locks_any=NONE, locks_write=NONE)
        assert m.state_of(100) is WordState.SHARED
        assert not out.race

    def test_same_thread_across_segments_keeps_exclusive(self):
        g = SegmentGraph()
        m = LocksetMachine(g)
        g.current(0)
        m.access(100, 0, is_write=True, locks_any=NONE, locks_write=NONE)
        g.on_create(0, 1)  # thread 0 gets a new segment
        out = m.access(100, 0, is_write=True, locks_any=NONE, locks_write=NONE)
        assert not out.race
        assert m.state_of(100) is WordState.EXCLUSIVE


class TestRawEraser:
    """§2.3.2's basic algorithm (the E10 ablation)."""

    def test_single_thread_init_warns(self):
        """Without states, even single-owner unlocked writes warn."""
        m = machine(use_states=False)
        out1 = touch(m, 100, 0, write=True, any_=NONE)
        assert out1.race  # C initialised to {} at first unlocked write

    def test_locked_discipline_still_fine(self):
        m = machine(use_states=False)
        for tid in (0, 1, 0):
            assert not touch(m, 100, tid, write=True, any_=L1).race

    def test_read_only_sharing_warns_if_unlocked_write_arrives(self):
        m = machine(use_states=False)
        touch(m, 100, 0, write=False, any_=L1)
        out = touch(m, 100, 1, write=True, any_=NONE)
        assert out.race


class TestClientSupport:
    def test_make_exclusive_resets_ownership(self):
        m = machine()
        touch(m, 100, 0, write=True)
        touch(m, 100, 1, write=False)  # SHARED
        m.make_exclusive(100, 1, owner=m.segments.current(1).seg_id)
        # The destructing thread's header writes no longer warn...
        assert not touch(m, 100, 1, write=True).race
        # ...but another thread touching during destruction still does.
        out = touch(m, 100, 2, write=True)
        assert out.race

    def test_make_exclusive_recovers_racy_words(self):
        m = machine()
        touch(m, 100, 0, write=True)
        touch(m, 100, 1, write=True)  # RACY
        m.make_exclusive(100, 1, owner=m.segments.current(1).seg_id)
        assert m.state_of(100) is WordState.EXCLUSIVE

    def test_alloc_resets_words(self):
        m = machine()
        touch(m, 100, 0, write=True)
        touch(m, 100, 1, write=True)  # RACY
        m.on_alloc(100, 1)
        assert m.state_of(100) is WordState.NEW
        assert not touch(m, 100, 2, write=True).race

    def test_free_stops_tracking(self):
        m = machine()
        touch(m, 100, 0, write=True)
        m.on_free(100, 1)
        assert m.tracked_words == 0


@given(
    st.lists(
        st.tuples(
            st.integers(0, 3),          # tid
            st.booleans(),              # write?
            st.booleans(),              # hold the lock?
        ),
        min_size=1,
        max_size=40,
    )
)
def test_property_candidate_set_shrinks_monotonically(ops):
    """C(v) only ever shrinks once initialised (Eraser's invariant)."""
    m = machine()
    prev: frozenset | None = None
    for tid, write, locked in ops:
        held = L1 if locked else NONE
        out = touch(m, 50, tid, write=write, any_=held)
        if out.lockset is not None and prev is not None:
            assert out.lockset <= prev
        if out.lockset is not None:
            prev = out.lockset
        if m.state_of(50) is WordState.RACY:
            break


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.booleans()),
        min_size=1,
        max_size=40,
    )
)
def test_property_consistent_single_lock_never_races(ops):
    """Any access pattern fully protected by one lock is race-free."""
    m = machine()
    for tid, write in ops:
        assert not touch(m, 50, tid, write=write, any_=L1).race
