"""Property-based equivalence: paged packed engine ≡ dict-of-objects.

The tentpole optimisation replaced the per-word ``ShadowWord`` objects
with paged packed ints and the O(words) range walks with O(pages) page
drops/fills.  These tests drive the production
:class:`~repro.detectors.lockset.LocksetMachine` and the reference
:class:`~tests.detectors.lockset_ref.RefLocksetMachine` (the old
representation, kept as an executable specification) through the same
randomly generated event sequences — interleaved accesses, allocation /
free / ``HG_DESTRUCT`` range operations, and thread create/join edges —
and require *bit-equal* observable behaviour after every single step:

* identical :class:`LocksetOutcome` for every access (race verdict,
  previous state, previous and new candidate-set ids),
* :meth:`access_check` returning an outcome exactly on races, with the
  same fields, and leaving the same shadow state behind as
  :meth:`access`,
* identical per-word ``state`` / ``owner`` / ``lockset_id`` at the
  accessed address and at range-operation boundaries (the off-by-one
  hotspots of the paged implementation), and
* identical ``tracked_words`` and ``state_distribution()`` at the end.

Addresses are drawn around the engine's page boundaries
(:data:`PAGE_SIZE`) so partially-covered first/last pages, whole-page
drops and the copy-on-write zero page all get exercised, and the
Figure-1 switches (``use_states`` / ``segment_transfer`` /
``once_per_word``) are part of the generated input so every ablated
configuration is covered too.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.detectors.lockset import (
    LOCKSETS,
    LocksetMachine,
    PAGE_SIZE,
    ShadowWord,
    WordState,
)
from repro.detectors.segments import SegmentGraph

from .lockset_ref import RefLocksetMachine

# A compact address universe straddling two page boundaries: page 0's
# interior, both edges of page 1 and the start of page 2.
_ADDRS = st.one_of(
    st.integers(0, 8),
    st.integers(PAGE_SIZE - 4, PAGE_SIZE + 4),
    st.integers(2 * PAGE_SIZE - 4, 2 * PAGE_SIZE + 4),
)
_TIDS = st.integers(0, 3)
_LOCKS = st.frozensets(st.integers(1, 3), max_size=3)

_ACCESS = st.tuples(
    st.just("access"), _ADDRS, _TIDS, st.booleans(), _LOCKS, _LOCKS
)
_RANGE = st.tuples(
    st.sampled_from(["alloc", "free", "destruct"]),
    _ADDRS,
    st.integers(1, 2 * PAGE_SIZE + 8),
    _TIDS,
)
_EDGE = st.tuples(st.sampled_from(["spawn", "join"]), _TIDS, _TIDS)

_OPS = st.lists(st.one_of(_ACCESS, _RANGE, _EDGE), max_size=60)

_CONFIGS = st.tuples(st.booleans(), st.booleans(), st.booleans())


def _outcomes_equal(a, b) -> bool:
    return (
        a.race == b.race
        and a.prev_state is b.prev_state
        and a.prev_lockset_id == b.prev_lockset_id
        and a.lockset_id == b.lockset_id
    )


def _word_equal(packed: LocksetMachine, ref: RefLocksetMachine, addr: int):
    view = ShadowWord(packed, addr)
    ref_word = ref._words.get(addr)
    if ref_word is None:
        assert view.state is WordState.NEW, (addr, view.state)
        return
    assert view.state is ref_word.state, (addr, view.state, ref_word.state)
    assert view.lockset_id == ref_word.lockset_id, (addr, view.lockset_id)
    # Owner is only *meaningful* while EXCLUSIVE, but the packed engine
    # must preserve it bit-for-bit through shared states too.
    if ref_word.state is WordState.EXCLUSIVE:
        assert view.owner == ref_word.owner, (addr, view.owner, ref_word.owner)


@given(ops=_OPS, config=_CONFIGS)
@settings(max_examples=120, deadline=None, derandomize=True)
def test_packed_engine_matches_reference(ops, config):
    use_states, segment_transfer, once_per_word = config
    graph = SegmentGraph()
    kwargs = dict(
        use_states=use_states,
        segment_transfer=segment_transfer,
        once_per_word=once_per_word,
    )
    ref = RefLocksetMachine(graph, **kwargs)
    packed = LocksetMachine(graph, **kwargs)      # exercised via access()
    checked = LocksetMachine(graph, **kwargs)     # access_check(), memoized
    uncached = LocksetMachine(                    # access_check(), no memo
        graph, transition_cache=False, **kwargs
    )
    assert checked._memo is not None
    assert uncached._memo is None

    touched: set[int] = set()
    for op in ops:
        kind = op[0]
        if kind == "access":
            _, addr, tid, is_write, held, extra_write = op
            # Write-mode locks are a subset of all held locks.
            locks_any = LOCKSETS.id_of(held | extra_write)
            locks_write = LOCKSETS.id_of(extra_write)
            o_ref = ref.access(addr, tid, is_write, locks_any, locks_write)
            o_pck = packed.access(addr, tid, is_write, locks_any, locks_write)
            o_chk = checked.access_check(
                addr, tid, is_write, locks_any, locks_write
            )
            o_unc = uncached.access_check(
                addr, tid, is_write, locks_any, locks_write
            )
            assert _outcomes_equal(o_ref, o_pck), (op, o_ref, o_pck)
            assert (o_chk is not None) == o_ref.race, (op, o_ref, o_chk)
            if o_chk is not None:
                assert _outcomes_equal(o_ref, o_chk), (op, o_ref, o_chk)
            # The memoized machine must be indistinguishable from the
            # uncached one: same outcome object fields, same state left
            # behind (checked below against the reference for both).
            assert (o_chk is None) == (o_unc is None), (op, o_chk, o_unc)
            if o_chk is not None:
                assert _outcomes_equal(o_chk, o_unc), (op, o_chk, o_unc)
            touched.add(addr)
            _word_equal(packed, ref, addr)
            assert checked.state_of(addr) is ref.state_of(addr)
            assert uncached.state_of(addr) is ref.state_of(addr)
        elif kind in ("alloc", "free", "destruct"):
            _, addr, size, tid = op
            if kind == "alloc":
                for m in (ref, packed, checked, uncached):
                    m.on_alloc(addr, size)
            elif kind == "free":
                for m in (ref, packed, checked, uncached):
                    m.on_free(addr, size)
            else:
                owner = (
                    graph.current(tid).seg_id if segment_transfer else tid
                )
                for m in (ref, packed, checked, uncached):
                    m.make_exclusive(addr, size, owner)
                touched.update((addr, addr + size - 1))
            # Boundary words are where a paged implementation breaks.
            for probe in (addr - 1, addr, addr + size - 1, addr + size):
                if probe >= 0:
                    _word_equal(packed, ref, probe)
                    assert checked.state_of(probe) is ref.state_of(probe)
                    assert uncached.state_of(probe) is ref.state_of(probe)
        elif kind == "spawn":
            _, parent, child = op
            graph.on_create(parent, child)
        else:  # join
            _, joiner, joined = op
            if joiner != joined:
                graph.on_join(joiner, joined)

    for addr in touched:
        _word_equal(packed, ref, addr)
    assert packed.tracked_words == ref.tracked_words
    assert packed.state_distribution() == ref.state_distribution()


@given(ops=_OPS)
@settings(max_examples=60, deadline=None, derandomize=True)
def test_view_writes_round_trip(ops):
    """The ShadowWord *view* writes through to packed storage exactly."""
    graph = SegmentGraph()
    packed = LocksetMachine(graph)
    for op in ops:
        if op[0] != "access":
            continue
        _, addr, tid, is_write, held, extra_write = op
        view = packed.word(addr)
        owner = graph.current(tid).seg_id
        view.state = WordState.EXCLUSIVE
        view.owner = owner
        sid = LOCKSETS.id_of(held)
        view.lockset_id = sid
        assert view.state is WordState.EXCLUSIVE
        assert view.owner == owner
        assert view.lockset_id == sid
        assert packed.state_of(addr) is WordState.EXCLUSIVE
