"""Property tests for the interned lock-set table (the Eraser fast path).

The fast path replaces per-access ``frozenset`` intersections with
memoized integer-id lookups (:class:`repro.detectors.lockset
.LocksetTable`).  Correctness requirement: for *any* sequence of sets,
ids and memoized intersections must agree exactly with raw frozenset
semantics — interning is an encoding, never an approximation.  The
hypothesis properties here pin that equivalence down, and a differential
test drives the full :class:`LocksetMachine` with frozensets vs interned
ids and demands identical outcomes.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.detectors.lockset import (
    EMPTY_ID,
    LOCKSETS,
    NO_LOCKSET,
    LocksetMachine,
    LocksetTable,
    WordState,
)
from repro.detectors.segments import SegmentGraph

#: Small lock-id universe so sets collide often (interning is exercised).
lock_ids = st.integers(min_value=-1, max_value=6)
locksets = st.frozensets(lock_ids, max_size=5)


class TestLocksetTableProperties:
    @settings(max_examples=300)
    @given(st.lists(locksets, max_size=20))
    def test_id_of_is_injective_on_distinct_sets(self, sets):
        table = LocksetTable()
        ids = {s: table.id_of(s) for s in sets}
        # Same set -> same id (stable), distinct sets -> distinct ids.
        for s, sid in ids.items():
            assert table.id_of(s) == sid
            assert table.members(sid) == s
        assert len(set(ids.values())) == len(ids)

    @settings(max_examples=300)
    @given(locksets, locksets)
    def test_intersection_agrees_with_frozenset_semantics(self, a, b):
        table = LocksetTable()
        ia, ib = table.id_of(a), table.id_of(b)
        expected = a & b
        result = table.intersect(ia, ib)
        assert table.members(result) == expected
        # Symmetric, and memoization returns the identical id.
        assert table.intersect(ib, ia) == result
        assert table.intersect(ia, ib) == result
        # "Is the candidate set empty?" is an integer comparison.
        assert (result == EMPTY_ID) == (not expected)

    @settings(max_examples=200)
    @given(st.lists(st.tuples(locksets, locksets), max_size=15))
    def test_memo_never_grows_past_distinct_pairs(self, pairs):
        table = LocksetTable()
        for a, b in pairs:
            table.intersect(table.id_of(a), table.id_of(b))
        distinct = {
            tuple(sorted((table.id_of(a), table.id_of(b))))
            for a, b in pairs
            if table.id_of(a) != table.id_of(b)
            and table.id_of(a) != EMPTY_ID
            and table.id_of(b) != EMPTY_ID
        }
        assert table.intersections_memoized <= len(distinct)

    def test_empty_set_is_always_id_zero(self):
        table = LocksetTable()
        assert table.id_of(frozenset()) == EMPTY_ID == 0
        assert table.id_of(()) == EMPTY_ID
        assert table.members(EMPTY_ID) == frozenset()
        # Intersecting with empty short-circuits without touching the memo.
        other = table.id_of(frozenset({1, 2}))
        assert table.intersect(EMPTY_ID, other) == EMPTY_ID
        assert table.intersections_memoized == 0

    def test_process_wide_table_accepts_iterables(self):
        sid = LOCKSETS.id_of([3, 1, 3])
        assert LOCKSETS.members(sid) == frozenset({1, 3})
        assert LOCKSETS.id_of(frozenset({1, 3})) == sid


#: One access: (addr, tid, is_write, locks_any ⊇ locks_write).
accesses = st.tuples(
    st.integers(min_value=0, max_value=3),  # addr
    st.integers(min_value=0, max_value=3),  # tid
    st.booleans(),  # is_write
    locksets,  # locks_any
    locksets,  # extra write-mode locks (intersected with any below)
)


class TestMachineIdEquivalence:
    """The machine must not care whether it is fed frozensets or ids."""

    @settings(max_examples=200)
    @given(st.lists(accesses, max_size=30), st.booleans(), st.booleans())
    def test_frozenset_and_id_feeds_agree(self, seq, use_states, once_per_word):
        m_raw = LocksetMachine(
            SegmentGraph(), use_states=use_states, once_per_word=once_per_word
        )
        m_ids = LocksetMachine(
            SegmentGraph(), use_states=use_states, once_per_word=once_per_word
        )
        for addr, tid, is_write, any_, extra in seq:
            locks_any = any_ | extra
            locks_write = any_  # any superset relation is representative
            out_raw = m_raw.access(
                addr, tid, is_write=is_write,
                locks_any=locks_any, locks_write=locks_write,
            )
            out_ids = m_ids.access(
                addr, tid, is_write=is_write,
                locks_any=LOCKSETS.id_of(locks_any),
                locks_write=LOCKSETS.id_of(locks_write),
            )
            assert out_raw.race == out_ids.race
            assert out_raw.prev_state == out_ids.prev_state
            assert out_raw.prev_lockset == out_ids.prev_lockset
            assert out_raw.lockset == out_ids.lockset
        for addr in range(4):
            wa, wb = m_raw.word(addr), m_ids.word(addr)
            assert wa.state == wb.state
            assert wa.lockset == wb.lockset


class TestShadowWordCompat:
    """The pre-interning ``lockset`` attribute API still works."""

    def test_lockset_property_round_trips(self):
        machine = LocksetMachine(SegmentGraph())
        word = machine.word(0)
        assert word.lockset is None and word.lockset_id == NO_LOCKSET
        word.lockset = frozenset({1, 2})
        assert word.lockset == frozenset({1, 2})
        assert LOCKSETS.members(word.lockset_id) == frozenset({1, 2})
        word.lockset = None
        assert word.lockset_id == NO_LOCKSET

    def test_outcome_properties_materialise(self):
        machine = LocksetMachine(SegmentGraph())
        machine.access(0, 0, is_write=True, locks_any=frozenset({1}), locks_write=frozenset({1}))
        out = machine.access(
            0, 1, is_write=True, locks_any=frozenset({1}), locks_write=frozenset({1})
        )
        assert out.prev_state is WordState.EXCLUSIVE
        assert out.lockset == frozenset({1})
