"""Sharded (intra-trace parallel) replay: byte-identity and merge laws.

The tentpole contract of :mod:`repro.detectors.parallel` is brutal on
purpose: an N-process page-sharded replay must reproduce the sequential
report **byte-for-byte** — same warnings, same order, same occurrence
counts, same suppression tally, same JSON serialisation.  These tests
pin that down from four sides:

* **byte-identity** — T1–T3 under all three paper configurations,
  replayed with 2 and 3 shards, equal the sequential reference bytes;
  the merged shadow state equals the sequential machine's, and every
  shard derived the same happens-before skeleton;
* **the partition is a true partition** (hypothesis) — for arbitrary
  multi-page access mixes and shard counts, every access reaches
  exactly one shard's handler and no access is lost to block skipping,
  with the block-index masks agreeing with :func:`shard_of_addr`;
* **the merge is order-independent** (hypothesis) — folding per-shard
  reports in any permutation yields identical bytes;
* **skip telemetry splits correctly** — ``blocks_skipped_shard``
  (foreign pages) and ``blocks_skipped_type`` (no subscriber) count
  disjoint block populations and ``events_skipped`` accounts for the
  rows inside shard-skipped blocks.
"""

from __future__ import annotations

import io
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.api.profiles import profile
from repro.detectors import HelgrindDetector
from repro.detectors.parallel import (
    PAGE_BITS,
    _analyze_shard,
    merge_reports,
    partition_stats,
    replay_trace_sharded,
    shard_of_addr,
)
from repro.detectors.report import Report
from repro.runtime import codec
from repro.runtime.codec import TraceWriter
from repro.runtime.events import (
    EVENT_TYPES,
    AccessKind,
    LockAcquire,
    LockMode,
    MemoryAccess,
)
from repro.runtime.trace import replay_trace

CASES = ("T1", "T2", "T3")
CONFIGS = ("original", "hwlc", "hwlc+dr")

_ACCESS_IDX = EVENT_TYPES.index(MemoryAccess)
_LOCK_IDX = EVENT_TYPES.index(LockAcquire)
_PAGE = 1 << PAGE_BITS


@pytest.fixture(scope="module")
def traces(tmp_path_factory):
    """T1–T3 recorded under each paper configuration, plus the offline
    sequential reference bytes: ``{(case, config): (path, bytes)}``."""
    from repro.experiments.harness import run_proxy_case
    from repro.runtime.trace import TraceRecorder
    from repro.sip.workload import evaluation_cases

    root = tmp_path_factory.mktemp("parallel-traces")
    by_id = {c.case_id: c for c in evaluation_cases()}
    out = {}
    for case_id in CASES:
        for config in CONFIGS:
            path = root / f"{case_id}-{config.replace('+', '_')}.rptr"
            with TraceRecorder(path, format="binary") as recorder:
                run_proxy_case(by_id[case_id], config, seed=42,
                               extra_hooks=(recorder,))
            det = HelgrindDetector(profile(config).config())
            replay_trace(path, det)
            reference = json.dumps(det.report.to_dict(), indent=2).encode()
            out[(case_id, config)] = (path, reference)
    return out


def _report_bytes(report) -> bytes:
    return json.dumps(report.to_dict(), indent=2).encode()


# ----------------------------------------------------------------------
# Byte-identity against the sequential replay
# ----------------------------------------------------------------------


class TestByteIdentity:
    @pytest.mark.parametrize("config", CONFIGS)
    @pytest.mark.parametrize("case_id", CASES)
    def test_two_shards_byte_identical(self, traces, case_id, config):
        path, reference = traces[(case_id, config)]
        result = replay_trace_sharded(path, config, shards=2)
        assert _report_bytes(result.report) == reference
        assert result.skeleton_consistent
        assert result.num_shards == 2 and len(result.shards) == 2

    def test_three_shards_and_shadow_merge(self, traces):
        """Beyond the report: the union of per-shard shadow pages must
        equal the sequential machine's state, page for page."""
        path, reference = traces[("T1", "hwlc+dr")]
        seq = HelgrindDetector(profile("hwlc+dr").config())
        replay_trace(path, seq)

        result = replay_trace_sharded(
            path, "hwlc+dr", shards=3, collect_shadow=True
        )
        assert _report_bytes(result.report) == reference
        assert result.skeleton_consistent
        assert (
            result.machine.state_distribution()
            == seq.machine.state_distribution()
        )

    def test_foreign_blocks_actually_skipped(self, traces):
        """Sharding must show up in the block accounting — at least one
        shard skips at least one foreign access block undecoded."""
        path, _ = traces[("T2", "hwlc+dr")]
        result = replay_trace_sharded(path, "hwlc+dr", shards=2)
        skipped = sum(
            s.stats["blocks_skipped_shard"] for s in result.shards
        )
        assert skipped > 0
        # Every shard still counted the whole event stream.
        assert len({s.events for s in result.shards}) == 1

    def test_shards_one_matches_sequential(self, traces):
        path, reference = traces[("T3", "original")]
        result = replay_trace_sharded(path, "original", shards=1)
        assert _report_bytes(result.report) == reference

    def test_rejects_bad_inputs(self, tmp_path, traces):
        with pytest.raises(ValueError, match="shards"):
            replay_trace_sharded(traces[("T1", "hwlc")][0], "hwlc", shards=0)
        text = tmp_path / "t.jsonl"
        text.write_text("{}\n")
        with pytest.raises(ValueError, match="binary RPTR"):
            replay_trace_sharded(text, "hwlc", shards=2)


# ----------------------------------------------------------------------
# Property: the page partition is a true partition
# ----------------------------------------------------------------------


def _write_trace(events, block_rows):
    buf = io.BytesIO()
    writer = TraceWriter(buf, block_rows=block_rows)
    for event in events:
        writer.write(event)
    writer.close()
    return buf.getvalue()


@st.composite
def _mixed_events(draw):
    """A step-ordered mix of multi-page accesses and lock traffic."""
    n = draw(st.integers(min_value=1, max_value=60))
    events = []
    for step in range(n):
        if draw(st.integers(0, 4)) == 0:
            events.append(
                LockAcquire(step, draw(st.integers(0, 3)), 7,
                            LockMode.WRITE, False)
            )
        else:
            addr = draw(st.integers(0, 7)) * _PAGE + draw(
                st.integers(0, _PAGE - 1)
            )
            events.append(
                MemoryAccess(step, draw(st.integers(0, 3)), addr,
                             AccessKind.READ, False, -1)
            )
    return events


@given(
    events=_mixed_events(),
    num_shards=st.integers(min_value=1, max_value=4),
    block_rows=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_property_partition_covers_every_access_once(
    events, num_shards, block_rows
):
    """Replaying every shard (skip set + page filter, exactly as the
    workers do) observes each access exactly once across the union,
    and each access lands in the shard :func:`shard_of_addr` names."""
    data = _write_trace(events, block_rows)
    index = codec.build_block_index(data, num_shards)
    accesses = [e for e in events if isinstance(e, MemoryAccess)]

    seen: list[tuple[int, int, int]] = []  # (shard, step, addr)
    for shard in range(num_shards):
        bit = 1 << shard
        skip = {off for off, mask in index.items() if not mask & bit}

        def handler(event, vm, _shard=shard):
            if (event.addr >> PAGE_BITS) % num_shards == _shard:
                seen.append((_shard, event.step, event.addr))

        table: list[tuple] = [() for _ in EVENT_TYPES]
        table[_ACCESS_IDX] = (handler,)
        count = codec.replay_blocks(data, table, None, skip_blocks=skip)
        assert count == len(events)

    # Exactly-once coverage, owned by the shard the address maps to.
    assert sorted((s, a) for _, s, a in seen) == sorted(
        (e.step, e.addr) for e in accesses
    )
    for shard, _, addr in seen:
        assert shard == shard_of_addr(addr, num_shards)

    # The index masks agree with shard_of_addr and the stats add up.
    full = (1 << num_shards) - 1
    for mask in index.values():
        assert 0 < mask <= full
    stats = partition_stats(index, num_shards)
    assert stats["access_blocks"] == len(index)
    assert stats["pure_blocks"] + stats["mixed_blocks"] == len(index)
    if num_shards == 1:
        assert stats["mixed_blocks"] == 0


# ----------------------------------------------------------------------
# Property: the merge is order-independent
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def shard_parts(traces):
    """Three per-shard reports from a real worker-side analysis (run
    inline — ``_analyze_shard`` is the exact function the pool maps)."""
    path, reference = traces[("T2", "hwlc+dr")]
    parts = [
        _analyze_shard((str(path), "hwlc+dr", shard, 3, PAGE_BITS, False, None))
        for shard in range(3)
    ]
    return [Report.from_dict(p["report"]) for p in parts], reference


@given(perm=st.permutations(list(range(3))))
@settings(max_examples=6, deadline=None)
def test_property_merge_is_order_independent(shard_parts, perm):
    parts, reference = shard_parts
    merged = merge_reports(parts[i] for i in perm)
    assert _report_bytes(merged) == reference


def test_merge_sums_occurrences_and_suppressions(shard_parts):
    parts, _ = shard_parts
    merged = merge_reports(parts)
    assert merged.dynamic_count == sum(p.dynamic_count for p in parts)
    assert merged.suppressed_count == sum(
        p.suppressed_count for p in parts
    )
    # Warnings come back in ascending step order — the sequential
    # first-occurrence order.
    steps = [w.step for w in merged.warnings]
    assert steps == sorted(steps)


# ----------------------------------------------------------------------
# Skip telemetry: shard skips vs type skips
# ----------------------------------------------------------------------


def test_skip_counters_split_cleanly():
    """Foreign-page blocks and no-subscriber blocks are tallied apart,
    and ``events_skipped`` counts only the former's rows."""
    events = (
        [MemoryAccess(i, 0, 0x10 + i, AccessKind.READ, False, -1)
         for i in range(4)]          # page 0 → shard 0: 2 blocks
        + [LockAcquire(4, 0, 7, LockMode.WRITE, False),
           LockAcquire(5, 1, 8, LockMode.WRITE, False)]  # 1 lock block
        + [MemoryAccess(6 + i, 0, _PAGE + i, AccessKind.READ, False, -1)
           for i in range(4)]        # page 1 → shard 1: 2 blocks
    )
    data = _write_trace(events, block_rows=2)
    index = codec.build_block_index(data, 2)
    assert len(index) == 4  # only access blocks are indexed

    skip = {off for off, mask in index.items() if not mask & 1}  # shard 0
    assert len(skip) == 2

    seen = []
    table: list[tuple] = [() for _ in EVENT_TYPES]
    table[_ACCESS_IDX] = ((lambda e, vm: seen.append(e.addr)),)

    stats = codec.ReplayStats()
    count = codec.replay_blocks(
        data, table, None, skip_blocks=skip, stats=stats
    )
    assert count == len(events)
    assert seen == [0x10, 0x11, 0x12, 0x13]
    assert stats.blocks_decoded == 2
    assert stats.blocks_skipped_shard == 2
    assert stats.blocks_skipped_type == 1
    # Rows inside skipped blocks of either kind: 4 foreign + 2 lock.
    assert stats.events_skipped == 6
    assert stats.as_dict() == {
        "blocks_decoded": 2,
        "blocks_skipped_type": 1,
        "blocks_skipped_shard": 2,
        "events_skipped": 6,
    }


def test_stats_without_skip_set_counts_type_skips():
    """The sequential path (no skip set) keeps the old semantics:
    undecoded blocks are all type-skips, never shard-skips."""
    events = [
        MemoryAccess(0, 0, 0x10, AccessKind.READ, False, -1),
        LockAcquire(1, 0, 7, LockMode.WRITE, False),
    ]
    data = _write_trace(events, block_rows=None)
    table: list[tuple] = [() for _ in EVENT_TYPES]
    table[_ACCESS_IDX] = ((lambda e, vm: None),)
    stats = codec.ReplayStats()
    codec.replay_blocks(data, table, None, stats=stats)
    assert stats.blocks_decoded == 1
    assert stats.blocks_skipped_type == 1
    assert stats.blocks_skipped_shard == 0
    assert stats.events_skipped == 1  # the undecoded lock row


# ----------------------------------------------------------------------
# CLI: --shards produces the same --report-out bytes
# ----------------------------------------------------------------------


def test_cli_sharded_report_matches_sequential(traces, tmp_path, capsys):
    from repro.cli import main

    path, reference = traces[("T1", "hwlc+dr")]
    seq_out = tmp_path / "seq.json"
    shard_out = tmp_path / "shard.json"
    assert main(["trace", "replay", str(path), "hwlc+dr",
                 "--report-out", str(seq_out)]) == 0
    assert main(["trace", "replay", str(path), "hwlc+dr", "--shards", "2",
                 "--report-out", str(shard_out)]) == 0
    out = capsys.readouterr().out
    assert "across 2 shards" in out
    assert "skipped (foreign pages)" in out
    assert seq_out.read_bytes() == shard_out.read_bytes()
    assert seq_out.read_bytes() == reference


def test_cli_stat_prints_page_histogram(traces, capsys):
    from repro.cli import main

    path, _ = traces[("T1", "hwlc+dr")]
    assert main(["trace", "stat", str(path)]) == 0
    out = capsys.readouterr().out
    assert "distinct shadow pages" in out
    assert "skew" in out
    assert "page 0x" in out
