"""The predictive tier: cross-thread lock sets and deadlock prediction.

T9 and T10 are the latent-bug cases: the host paces their threads so
the seeded bug never fires in the observed interleaving — the legacy
configurations stay silent about it — while the ``predictive`` profile
reconstructs the alternative schedule offline:

* **T9** takes ``registrar → domain`` in one thread and ``domain →
  registrar`` across a fork (the second lock is acquired by a helper
  thread under the parent's critical section), a lock-order cycle no
  single-thread lock graph can see;
* **T10** warms a probe word up without the statistics lock before any
  reader exists — Eraser's EXCLUSIVE warm-up hides it live, the
  predictive pair analysis does not.

Everything predicted must survive replay and sharded replay with
byte-identical reports — predictions are part of the finalize()
contract, not a side channel.
"""

from __future__ import annotations

import json

import pytest

from repro.api.profiles import profile
from repro.detectors.parallel import replay_trace_sharded
from repro.detectors.report import WarningKind
from repro.experiments.harness import run_proxy_case
from repro.runtime.trace import TraceRecorder, replay_trace
from repro.sip.workload import evaluation_cases, predictive_cases

LEGACY = ("original", "hwlc", "hwlc+dr")
PREDICTED_KINDS = (WarningKind.PREDICTED_RACE, WarningKind.PREDICTED_DEADLOCK)


def _case(case_id: str):
    by_id = {c.case_id: c for c in (*evaluation_cases(), *predictive_cases())}
    return by_id[case_id]


def _run(case_id: str, config: str):
    """Run a case live under a config; returns the detector."""
    det = profile(config).detector()
    run_proxy_case(_case(case_id), config, seed=42, detector=det)
    return det


def _predicted(report):
    return [w for w in report.warnings if w.kind in PREDICTED_KINDS]


@pytest.fixture(scope="module")
def predictive_runs():
    """T9/T10 run once under the predictive profile."""
    return {case_id: _run(case_id, "predictive") for case_id in ("T9", "T10")}


class TestLatentDeadlock:
    def test_t9_deadlock_predicted(self, predictive_runs):
        det = predictive_runs["T9"]
        predicted = _predicted(det.report)
        assert [w.kind for w in predicted] == [WarningKind.PREDICTED_DEADLOCK]
        assert "Predicted deadlock" in predicted[0].message

    def test_t9_never_deadlocks_live(self, predictive_runs):
        # The cycle is predicted, not observed: no live deadlock or
        # lock-order warning in the same report.
        det = predictive_runs["T9"]
        live_kinds = {
            w.kind for w in det.report.warnings
            if w.kind not in PREDICTED_KINDS
        }
        assert WarningKind.DEADLOCK not in live_kinds
        assert WarningKind.LOCK_ORDER not in live_kinds

    def test_t9_stats(self, predictive_runs):
        stats = predictive_runs["T9"].predict_stats()
        assert stats["edges"] >= 2
        assert stats["cycles_checked"] >= 1
        assert stats["predictions"] == 1

    @pytest.mark.parametrize("config", LEGACY)
    def test_legacy_configs_stay_silent(self, config):
        det = _run("T9", config)
        assert _predicted(det.report) == []
        live_kinds = {w.kind for w in det.report.warnings}
        assert WarningKind.DEADLOCK not in live_kinds
        assert WarningKind.LOCK_ORDER not in live_kinds


class TestLatentRace:
    def test_t10_race_predicted(self, predictive_runs):
        det = predictive_runs["T10"]
        predicted = _predicted(det.report)
        assert [w.kind for w in predicted] == [WarningKind.PREDICTED_RACE]
        assert predicted[0].stack, "prediction must carry the access stack"

    def test_t10_race_invisible_live(self, predictive_runs):
        # The probe word itself races only in the predicted schedule —
        # live, the writer owns it EXCLUSIVE before the reader arrives.
        det = predictive_runs["T10"]
        addr = _predicted(det.report)[0].addr
        live_here = [
            w for w in det.report.warnings
            if w.kind == WarningKind.DATA_RACE and w.addr == addr
        ]
        assert live_here == []

    def test_t10_stats(self, predictive_runs):
        assert predictive_runs["T10"].predict_stats()["predictions"] == 1

    @pytest.mark.parametrize("config", LEGACY)
    def test_legacy_configs_stay_silent(self, config):
        det = _run("T10", config)
        assert _predicted(det.report) == []


class TestNoNewNoise:
    @pytest.mark.parametrize("case_id", ("T1", "T2", "T3"))
    def test_paper_cases_gain_no_predictions(self, case_id):
        """The predictive tier must not pollute the Figure 6 rows: on
        the paper's cases every race either manifests live or is
        filtered (bus-mode guard, init-phase exemption)."""
        det = _run(case_id, "predictive")
        assert _predicted(det.report) == []

    def test_t1_live_findings_match_hwlc_dr(self):
        predictive = _run("T1", "predictive")
        legacy = _run("T1", "hwlc+dr")
        assert predictive.report.render() == legacy.report.render()


class TestReplayParity:
    @pytest.mark.parametrize("case_id", ("T9", "T10"))
    def test_sequential_and_sharded_replay_byte_identical(
        self, tmp_path, case_id
    ):
        live = profile("predictive").detector()
        path = tmp_path / f"{case_id}.rptr"
        with TraceRecorder(path, format="binary") as recorder:
            run_proxy_case(_case(case_id), "predictive", seed=42,
                           detector=live, extra_hooks=(recorder,))
        reference = live.report.render()
        assert _predicted(live.report), "live run must predict"

        offline = profile("predictive").detector()
        replay_trace(path, offline)
        offline.finalize()
        assert offline.report.render() == reference

        result = replay_trace_sharded(path, "predictive", shards=3)
        assert result.report.render() == reference
        assert result.skeleton_consistent

    def test_report_json_round_trip(self, predictive_runs):
        from repro.detectors.report import validate_report_json

        det = predictive_runs["T9"]
        doc = det.report.to_json()
        assert validate_report_json(doc) == []
        kinds = [f["kind"] for f in doc["findings"] if f["predicted"]]
        assert kinds == ["predicted_deadlock"]
