"""Tests for the RaceTrack-style adaptive detector (paper ref [16])."""

from __future__ import annotations

from repro.detectors import HelgrindConfig, HelgrindDetector
from repro.detectors.racetrack import RaceTrackDetector
from repro.runtime import VM, RandomScheduler


def run_rt(program, **kw):
    det = RaceTrackDetector(**kw)
    VM(detectors=(det,)).run(program)
    return det


def plain_race(api):
    addr = api.malloc(1)
    api.store(addr, 0)

    def w(a):
        with a.frame("inc", "x.cpp", 1):
            a.store(addr, a.load(addr) + 1)

    t1, t2 = api.spawn(w), api.spawn(w)
    api.join(t1)
    api.join(t2)


class TestDetection:
    def test_plain_race_reported(self):
        det = run_rt(plain_race)
        assert det.report.location_count >= 1
        assert "Threadset" in det.report.warnings[0].details

    def test_locked_discipline_silent(self):
        def prog(api):
            addr = api.malloc(1)
            api.store(addr, 0)
            m = api.mutex()

            def w(a):
                for _ in range(4):
                    a.lock(m)
                    a.store(addr, a.load(addr) + 1)
                    a.unlock(m)

            ts = [api.spawn(w) for _ in range(3)]
            for t in ts:
                api.join(t)

        det = run_rt(prog)
        assert det.report.location_count == 0

    def test_read_only_sharing_silent(self):
        def prog(api):
            addr = api.malloc(1)
            api.store(addr, 7)

            def reader(a):
                a.load(addr)
                a.load(addr)

            ts = [api.spawn(reader) for _ in range(3)]
            for t in ts:
                api.join(t)

        det = run_rt(prog)
        assert det.report.location_count == 0

    def test_atomic_counter_silent_by_default(self):
        def prog(api):
            counter = api.malloc(1)
            api.store(counter, 0)

            def bump(a):
                a.atomic_add(counter, 1)

            t1, t2 = api.spawn(bump), api.spawn(bump)
            api.join(t1)
            api.join(t2)

        assert run_rt(prog).report.location_count == 0
        assert run_rt(prog, atomic_aware=False).report.location_count >= 1


class TestAdaptiveOwnership:
    """The feature RaceTrack exists for: hand-offs without segments."""

    def test_fork_join_handoff_silent(self):
        def prog(api):
            for _ in range(4):
                data = api.malloc(2, tag="req")
                api.store(data, 1)
                api.store(data + 1, 2)

                def worker(a, base=data):
                    a.store(base, a.load(base) * 2)

                t = api.spawn(worker)
                api.join(t)
                api.load(data)
                api.free(data)

        det = run_rt(prog)
        assert det.report.location_count == 0

    def test_queue_handoff_silent(self):
        """Figure 11's pattern, clean with no segment machinery at all."""

        def prog(api):
            q = api.queue()

            def worker(a):
                while True:
                    msg = a.get(q)
                    if msg is None:
                        return
                    a.store(msg, a.load(msg) + 1)

            t = api.spawn(worker)
            for i in range(3):
                data = api.malloc(1)
                api.store(data, i)
                api.put(q, data)
            api.put(q, None)
            api.join(t)

        det = run_rt(prog)
        assert det.report.location_count == 0

    def test_privatisation_resets_the_lockset(self):
        """Shared-then-private-then-shared: Eraser keeps the drained
        candidate set forever; RaceTrack re-owns and starts afresh."""

        def prog(api):
            addr = api.malloc(1, tag="recycled")
            api.store(addr, 0)
            m = api.mutex()

            # Epoch 1: genuinely shared, properly locked.
            def locked_worker(a):
                a.lock(m)
                a.store(addr, a.load(addr) + 1)
                a.unlock(m)

            t = api.spawn(locked_worker)
            api.join(t)
            # Privatised: main owns it again; unlocked use is fine now.
            api.store(addr, 0)
            api.store(addr, 1)
            # Epoch 2: shared again, properly locked again.
            t2 = api.spawn(locked_worker)
            api.lock(m)
            api.store(addr, api.load(addr) + 1)
            api.unlock(m)
            api.join(t2)

        det = run_rt(prog)
        assert det.report.location_count == 0

    def test_eraser_vs_racetrack_on_the_same_handoff(self):
        """Head-to-head: segment-less Eraser warns, RaceTrack does not."""

        def prog(api):
            data = api.malloc(1)
            api.store(data, 0)

            def worker(a):
                a.store(data, a.load(data) + 1)

            t = api.spawn(worker)
            api.join(t)
            api.store(data, api.load(data) + 1)

        racetrack = RaceTrackDetector()
        eraser = HelgrindDetector(HelgrindConfig.eraser_states())
        VM(detectors=(racetrack, eraser)).run(prog)
        assert eraser.report.location_count > 0
        assert racetrack.report.location_count == 0


class TestThreadsetMechanics:
    def test_pruning_on_join(self):
        def prog(api):
            addr = api.malloc(1)
            api.store(addr, 0)

            def worker(a):
                a.store(addr, 1)

            t = api.spawn(worker)
            api.join(t)
            api.load(addr)
            return addr

        det = RaceTrackDetector()
        vm = VM(detectors=(det,))
        addr = vm.run(prog)
        # After the join-ordered read, only main remains in the set.
        assert set(det.threadset_of(addr)) == {0}

    def test_concurrent_accessors_accumulate(self):
        def prog(api):
            addr = api.malloc(1)
            api.store(addr, 0)
            m = api.mutex()

            def worker(a):
                a.lock(m)
                a.store(addr, a.load(addr) + 1)
                a.unlock(m)
                a.sleep(10)  # stays alive: cannot be pruned

            ts = [api.spawn(worker) for _ in range(3)]
            for t in ts:
                api.join(t)
            return addr

        det = RaceTrackDetector()
        vm = VM(detectors=(det,), scheduler=RandomScheduler(5))
        addr = vm.run(prog)
        assert len(det.threadset_of(addr)) >= 1

    def test_full_proxy_run_reports_only_real_issues(self):
        """On the buggy proxy, RaceTrack's findings stay within the
        lock-set detector's block set (consistency with §2.2's framing)."""
        from repro.oracle import GroundTruth
        from repro.sip.bugs import EVALUATION_BUGS
        from repro.sip.server import ProxyConfig, SipProxy
        from repro.sip.workload import evaluation_cases

        racetrack = RaceTrackDetector()
        lockset = HelgrindDetector(HelgrindConfig.original())
        proxy = SipProxy(ProxyConfig(bugs=EVALUATION_BUGS), truth=GroundTruth())
        vm = VM(
            detectors=(racetrack, lockset),
            scheduler=RandomScheduler(42),
            step_limit=10_000_000,
        )
        vm.run(proxy.main, evaluation_cases()[1].wires)

        def blocks(report):
            out = set()
            for w in report:
                if w.addr is not None:
                    block = vm.memory.find_block(w.addr)
                    out.add(block.block_id if block else w.addr)
            return out

        assert blocks(racetrack.report) <= blocks(lockset.report)
