"""Tests for warning reports, deduplication and suppression files."""

from __future__ import annotations

import pytest

from repro.detectors.report import Report, Warning_, WarningKind
from repro.detectors.suppressions import Suppressions
from repro.errors import SuppressionSyntaxError
from repro.runtime.events import Frame


def make_warning(fn="f", file="a.cpp", line=1, kind=WarningKind.DATA_RACE, addr=100):
    return Warning_(
        kind=kind,
        message="Possible data race writing variable",
        tid=1,
        step=10,
        stack=(Frame(fn, file, line), Frame("caller", file, 99), Frame("main", file, 1)),
        addr=addr,
    )


class TestReport:
    def test_dedup_by_location(self):
        report = Report()
        assert report.add(make_warning(line=5))
        assert not report.add(make_warning(line=5))
        assert report.add(make_warning(line=6))
        assert report.location_count == 2
        assert report.dynamic_count == 3

    def test_kind_distinguishes_locations(self):
        report = Report()
        report.add(make_warning(kind=WarningKind.DATA_RACE))
        report.add(make_warning(kind=WarningKind.LOCK_ORDER))
        assert report.location_count == 2

    def test_stackless_warning_dedups_by_addr(self):
        report = Report()
        w1 = Warning_(WarningKind.DATA_RACE, "m", 0, 1, stack=(), addr=5)
        w2 = Warning_(WarningKind.DATA_RACE, "m", 0, 2, stack=(), addr=5)
        w3 = Warning_(WarningKind.DATA_RACE, "m", 0, 3, stack=(), addr=6)
        report.add(w1)
        report.add(w2)
        report.add(w3)
        assert report.location_count == 2

    def test_by_kind_and_iteration(self):
        report = Report()
        report.add(make_warning())
        assert len(report.by_kind(WarningKind.DATA_RACE)) == 1
        assert len(report.by_kind(WarningKind.LOCK_ORDER)) == 0
        assert len(list(report)) == 1

    def test_format_summary(self):
        report = Report()
        report.add(make_warning())
        text = report.format_summary()
        assert "1 reported locations" in text
        assert "possible-data-race: 1" in text

    def test_format_full_contains_stack(self):
        report = Report()
        report.add(make_warning(fn="_M_grab", file="basic_string.h", line=183))
        text = report.format_full()
        assert "_M_grab (basic_string.h:183)" in text
        assert "by caller" in text


SUPP = """
# stringtest known-FP
{
   string-refcount
   possible-data-race
   fun:_M_grab
   ...
   fun:main
}
{
   any-third-party
   possible-data-race
   file:vendor/*
}
"""


class TestSuppressions:
    def test_parse(self):
        supp = Suppressions.parse(SUPP)
        assert len(supp) == 2
        assert supp.entries[0].name == "string-refcount"
        assert supp.entries[0].kind == "possible-data-race"

    def test_match_with_ellipsis(self):
        supp = Suppressions.parse(SUPP)
        w = Warning_(
            WarningKind.DATA_RACE,
            "m",
            0,
            1,
            stack=(
                Frame("_M_grab", "basic_string.h", 1),
                Frame("string::string", "basic_string.h", 2),
                Frame("main", "test.cpp", 3),
            ),
        )
        assert supp.matches(w)
        assert supp.entries[0].hits == 1

    def test_no_match_wrong_innermost(self):
        supp = Suppressions.parse(SUPP)
        w = make_warning(fn="other")
        assert not supp.matches(w)

    def test_file_glob(self):
        supp = Suppressions.parse(SUPP)
        w = Warning_(
            WarningKind.DATA_RACE,
            "m",
            0,
            1,
            stack=(Frame("anything", "vendor/zlib.c", 5),),
        )
        assert supp.matches(w)

    def test_kind_must_match(self):
        supp = Suppressions.parse(SUPP)
        w = Warning_(
            WarningKind.LOCK_ORDER,
            "m",
            0,
            1,
            stack=(Frame("anything", "vendor/zlib.c", 5),),
        )
        assert not supp.matches(w)

    def test_prefix_semantics(self):
        """Pattern lines are a prefix: deeper stacks still match."""
        supp = Suppressions.parse(
            "{\n  e\n  possible-data-race\n  fun:inner\n}\n"
        )
        w = Warning_(
            WarningKind.DATA_RACE,
            "m",
            0,
            1,
            stack=(Frame("inner", "x", 1), Frame("outer", "x", 2)),
        )
        assert supp.matches(w)

    def test_fun_glob(self):
        supp = Suppressions.parse(
            "{\n  e\n  possible-data-race\n  fun:std::*\n}\n"
        )
        w = make_warning(fn="std::string::assign")
        assert supp.matches(w)

    def test_report_integration(self):
        supp = Suppressions.parse(SUPP)
        report = Report(suppressions=supp)
        assert not report.add(make_warning(fn="_M_grab"))
        assert report.location_count == 0
        assert report.suppressed_count == 1
        assert report.add(make_warning(fn="not_suppressed"))

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "x.supp"
        path.write_text(SUPP, encoding="utf-8")
        assert len(Suppressions.load(path)) == 2

    def test_format_stats(self):
        supp = Suppressions.parse(SUPP)
        supp.matches(make_warning(fn="_M_grab"))
        stats = supp.format_stats()
        assert "1  string-refcount" in stats

    @pytest.mark.parametrize(
        "bad",
        [
            "not-a-brace\n",
            "{\n  only-name\n}\n",
            "{\n  name\n  kind\n  weird:line\n}\n",
            "{\n  name\n  kind\n",  # unterminated
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(SuppressionSyntaxError):
            Suppressions.parse(bad)

    def test_empty_file_ok(self):
        assert len(Suppressions.parse("")) == 0
        assert len(Suppressions.parse("# just a comment\n")) == 0


class TestReportPersistence:
    def _populated(self):
        report = Report()
        report.add(make_warning(fn="a", line=1))
        report.add(make_warning(fn="a", line=1))  # second occurrence
        report.add(make_warning(fn="b", line=9, kind=WarningKind.LOCK_ORDER, addr=None))
        return report

    def test_roundtrip(self, tmp_path):
        report = self._populated()
        path = tmp_path / "report.json"
        report.save(path)
        loaded = Report.load(path)
        assert loaded.location_count == report.location_count
        assert loaded.locations() == report.locations()
        assert loaded.dynamic_count == report.dynamic_count
        assert loaded.warnings[0].stack == report.warnings[0].stack

    def test_details_preserved(self, tmp_path):
        report = Report()
        w = make_warning()
        w.details["Previous state"] = "shared RO, no locks"
        report.add(w)
        path = tmp_path / "r.json"
        report.save(path)
        loaded = Report.load(path)
        assert loaded.warnings[0].details["Previous state"] == "shared RO, no locks"

    def test_ci_baseline_workflow(self, tmp_path):
        """The intended use: diff a new run against a saved baseline."""
        baseline = self._populated()
        baseline.save(tmp_path / "baseline.json")
        new_run = self._populated()
        new_run.add(make_warning(fn="freshly_introduced", line=77))
        old = set(Report.load(tmp_path / "baseline.json").locations())
        regressions = [w for w in new_run if w.location_key not in old]
        assert len(regressions) == 1
        assert regressions[0].site.function == "freshly_introduced"


class TestLockCycleWitness:
    def test_cycle_report_names_both_edges(self):
        from repro.detectors import LockGraphDetector
        from repro.runtime import VM

        def prog(api):
            m1, m2 = api.mutex("A"), api.mutex("B")
            with api.frame("forward_path", "bank.cpp", 10):
                api.lock(m1)
                api.lock(m2)
                api.unlock(m2)
                api.unlock(m1)
            with api.frame("reverse_path", "bank.cpp", 50):
                api.lock(m2)
                api.lock(m1)
                api.unlock(m1)
                api.unlock(m2)

        det = LockGraphDetector()
        VM(detectors=(det,)).run(prog)
        (warning,) = det.report.warnings
        text = warning.format()
        assert "forward_path" in text
        assert "reverse_path" in text
