"""Tests for the thread-segment happens-before graph (paper Figure 2)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.detectors.segments import SegmentGraph


class TestLifecycle:
    def test_root_thread_first_segment(self):
        g = SegmentGraph()
        seg = g.start_thread(0)
        assert seg.tid == 0
        assert g.current(0) is seg

    def test_double_start_rejected(self):
        g = SegmentGraph()
        g.start_thread(0)
        with pytest.raises(ValueError):
            g.start_thread(0)

    def test_lazy_current_starts_thread(self):
        g = SegmentGraph()
        seg = g.current(7)
        assert seg.tid == 7

    def test_create_splits_parent(self):
        g = SegmentGraph()
        p0 = g.current(0)
        child = g.on_create(0, 1)
        p1 = g.current(0)
        assert p0 is not p1
        assert child.tid == 1
        assert g.segment_count == 3


class TestHappensBefore:
    def test_create_edge(self):
        """Figure 2: TS(parent, pre-create) → TS(child)."""
        g = SegmentGraph()
        p0 = g.current(0)
        child = g.on_create(0, 1)
        assert g.happens_before(p0, child)
        assert not g.happens_before(child, p0)

    def test_parent_post_create_concurrent_with_child(self):
        g = SegmentGraph()
        g.current(0)
        child = g.on_create(0, 1)
        p1 = g.current(0)
        assert not g.ordered(p1, child)

    def test_join_edge(self):
        """Figure 2: TS(child, final) → TS(parent, post-join)."""
        g = SegmentGraph()
        g.current(0)
        child = g.on_create(0, 1)
        g.on_finish(1)
        post_join = g.on_join(0, 1)
        assert g.happens_before(child, post_join)

    def test_same_thread_segments_ordered(self):
        g = SegmentGraph()
        s0 = g.current(0)
        g.on_create(0, 1)
        s1 = g.current(0)
        g.on_create(0, 2)
        s2 = g.current(0)
        assert g.happens_before(s0, s1)
        assert g.happens_before(s1, s2)
        assert g.happens_before(s0, s2)  # transitivity
        assert not g.happens_before(s2, s0)

    def test_happens_before_is_irreflexive(self):
        g = SegmentGraph()
        s = g.current(0)
        assert not g.happens_before(s, s)
        assert g.ordered(s, s)

    def test_figure2_scenario(self):
        """The exact Figure 2 shape: T1 creates T2 and T3, joins both.

        TS1(T1) → TS1(T2); TS2(T1) → TS1(T3); TS1(T3) ends → TS3(T1);
        TS1(T2) ends → TS4(T1).  Non-overlapping segments stay exclusive.
        """
        g = SegmentGraph()
        ts1_t1 = g.current(1)
        ts1_t2 = g.on_create(1, 2)
        ts2_t1 = g.current(1)
        ts1_t3 = g.on_create(1, 3)
        ts3_t1_pre = g.current(1)
        g.on_finish(3)
        ts3_t1 = g.on_join(1, 3)
        g.on_finish(2)
        ts4_t1 = g.on_join(1, 2)

        # Creates order the creator's earlier segment before the child.
        assert g.happens_before(ts1_t1, ts1_t2)
        assert g.happens_before(ts2_t1, ts1_t3)
        # Joins order the child before the joiner's later segment.
        assert g.happens_before(ts1_t3, ts3_t1)
        assert g.happens_before(ts1_t2, ts4_t1)
        # T2 and T3 are concurrent with each other.
        assert not g.ordered(ts1_t2, ts1_t3)
        # T2 is concurrent with T1's middle segments.
        assert not g.ordered(ts1_t2, ts2_t1)
        assert not g.ordered(ts1_t2, ts3_t1_pre)

    def test_join_before_finish_event_falls_back(self):
        g = SegmentGraph()
        g.current(0)
        child = g.on_create(0, 1)
        # No on_finish observed (malformed stream); join still orders.
        post = g.on_join(0, 1)
        assert g.happens_before(child, post)


class TestPostReceive:
    def test_post_receive_orders_across_threads(self):
        g = SegmentGraph()
        a0 = g.current(0)
        _ = g.current(1)
        token = g.post(0)
        b1 = g.receive(1, token)
        assert g.happens_before(a0, b1)

    def test_poster_work_after_post_not_ordered(self):
        g = SegmentGraph()
        g.current(0)
        g.current(1)
        token = g.post(0)
        a_after = g.current(0)
        b1 = g.receive(1, token)
        assert not g.ordered(a_after, b1)

    def test_chained_posts_transitive(self):
        g = SegmentGraph()
        a0 = g.current(0)
        g.current(1)
        g.current(2)
        t1 = g.post(0)
        g.receive(1, t1)
        t2 = g.post(1)
        c = g.receive(2, t2)
        assert g.happens_before(a0, c)


@given(st.lists(st.sampled_from(["create", "join", "post"]), max_size=30))
def test_property_happens_before_is_a_strict_partial_order(ops):
    """Irreflexive + asymmetric + transitive over a random create/join DAG."""
    g = SegmentGraph()
    g.current(0)
    alive = [0]
    finished: list[int] = []
    next_tid = 1
    tokens = []
    for op in ops:
        actor = alive[0]
        if op == "create":
            g.on_create(actor, next_tid)
            alive.append(next_tid)
            next_tid += 1
        elif op == "join" and len(alive) > 1:
            target = alive.pop()
            g.on_finish(target)
            finished.append(target)
            g.on_join(actor, target)
        elif op == "post":
            tokens.append(g.post(actor))
            if tokens and len(alive) > 1:
                g.receive(alive[-1], tokens.pop(0))
    segs = [g.segment(i) for i in range(g.segment_count)]
    for a in segs:
        assert not g.happens_before(a, a)
    import itertools

    sample = segs[:12]
    for a, b in itertools.permutations(sample, 2):
        if g.happens_before(a, b):
            assert not g.happens_before(b, a)
    for a, b, c in itertools.permutations(sample[:8], 3):
        if g.happens_before(a, b) and g.happens_before(b, c):
            assert g.happens_before(a, c)
