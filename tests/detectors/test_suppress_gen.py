"""Tests for suppression-file generation — the §2.3.1 triage loop."""

from __future__ import annotations

from repro.detectors import HelgrindConfig, HelgrindDetector
from repro.detectors.classify import classify_report
from repro.detectors.suppress_gen import (
    generate_suppressions,
    suppression_entry_text,
    suppressions_for,
)
from repro.detectors.suppressions import Suppressions
from repro.oracle import GroundTruth, WarningCategory
from repro.runtime import VM, RandomScheduler
from repro.sip.bugs import EVALUATION_BUGS
from repro.sip.server import ProxyConfig, SipProxy
from repro.sip.workload import evaluation_cases


def run_case(suppressions=None, *, seed=42):
    truth = GroundTruth()
    proxy = SipProxy(ProxyConfig(bugs=EVALUATION_BUGS), truth=truth)
    det = HelgrindDetector(HelgrindConfig.original(), suppressions=suppressions)
    vm = VM(detectors=(det,), scheduler=RandomScheduler(seed), step_limit=10_000_000)
    vm.run(proxy.main, evaluation_cases()[0].wires)
    return det, classify_report(det.report, truth)


class TestGeneration:
    def test_entries_parse_back(self):
        _, classified = run_case()
        text = generate_suppressions(classified)
        supp = Suppressions.parse(text)
        assert len(supp) == classified.false_positives + classified.count(
            WarningCategory.BENIGN
        )

    def test_entry_shape(self):
        _, classified = run_case()
        fp = next(i for i in classified.items if i.category.is_false_positive)
        text = suppression_entry_text(fp.warning, "entry-1", note="why")
        assert text.startswith("{")
        assert "# why" in text
        assert f"   {fp.warning.kind}" in text
        assert "fun:" in text

    def test_category_filter(self):
        _, classified = run_case()
        only_hw = generate_suppressions(
            classified, categories=(WarningCategory.FP_HW_LOCK,)
        )
        supp = Suppressions.parse(only_hw)
        assert len(supp) == classified.count(WarningCategory.FP_HW_LOCK)

    def test_true_races_never_suppressed(self):
        _, classified = run_case()
        text = generate_suppressions(classified)
        for item in classified.items:
            if item.category is WarningCategory.TRUE_RACE:
                # None of the entry names reference true-race items.
                assert "true-race" not in text


class TestRoundTrip:
    def test_rerun_with_generated_suppressions(self):
        """The §2.3.1 loop: triage once, suppress, re-run — only the
        true races remain, every one of them."""
        _, classified = run_case()
        supp = suppressions_for(classified)
        det2, classified2 = run_case(suppressions=supp, seed=42)

        assert classified2.false_positives == 0
        assert classified2.true_races == classified.true_races
        assert det2.report.suppressed_count > 0
        # The suppression hit statistics account for every eaten warning.
        assert sum(e.hits for e in supp.entries) == det2.report.suppressed_count

    def test_suppressions_are_config_specific(self):
        """Suppressions triaged under Original still apply under any
        config (they match stacks), they just have nothing to eat once
        the algorithmic fixes removed those classes."""
        _, classified = run_case()
        supp = suppressions_for(classified)

        truth = GroundTruth()
        proxy = SipProxy(
            ProxyConfig(bugs=EVALUATION_BUGS, instrumented=True), truth=truth
        )
        det = HelgrindDetector(HelgrindConfig.hwlc_dr(), suppressions=supp)
        vm = VM(detectors=(det,), scheduler=RandomScheduler(42), step_limit=10_000_000)
        vm.run(proxy.main, evaluation_cases()[0].wires)
        classified_dr = classify_report(det.report, truth)
        assert classified_dr.false_positives == 0
        assert classified_dr.true_races > 0
