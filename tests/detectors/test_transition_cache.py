"""The memoized transition cache, same-access elision and batched replay
must be *invisible* in every report (docs/PERFORMANCE.md layer 6).

Four angles:

* **byte-identity, live path** — T1–T3 under all three paper
  configurations produce byte-identical reports with the cache forced
  on and forced off (the on-path includes the one-entry same-access
  filter in the specialised access handlers);
* **byte-identity, batched replay** — replaying the recorded traces
  with the cache on routes whole ``MemoryAccess`` blocks through
  :meth:`HelgrindDetector.bulk_access`; the report must equal both the
  cache-off per-event replay and the live report, byte for byte — even
  with the memo capacity crushed to force evictions mid-replay;
* **counters** — memo hits/misses/evictions and elided accesses tally
  where expected and stay zero when disabled;
* **gates** — the process-wide default, the per-config override, the
  ``bulk_access_ready`` static gate, and the pickling rule (memo values
  embed process-local lockset ids, so checkpoints ship it empty).
"""

from __future__ import annotations

import dataclasses
import json
import pickle

import pytest

from repro.api.profiles import profile
from repro.detectors import DjitDetector, HelgrindDetector
from repro.detectors.helgrind import HelgrindConfig
from repro.detectors.lockset import (
    LocksetMachine,
    set_transition_cache_default,
    transition_cache_default,
)
from repro.detectors.segments import SegmentGraph
from repro.runtime.trace import replay_trace

CASES = ("T1", "T2", "T3")
CONFIGS = ("original", "hwlc", "hwlc+dr")


def _report_bytes(report) -> bytes:
    return json.dumps(report.to_dict(), indent=2).encode()


def _config(name: str, cache: bool) -> HelgrindConfig:
    return dataclasses.replace(profile(name).config(), transition_cache=cache)


@pytest.fixture(scope="module")
def traces(tmp_path_factory):
    """T1–T3 recorded under each configuration with the cache *off*
    (the uncached live run is the ground truth), as
    ``{(case, config): (trace path, live report bytes)}``."""
    from repro.experiments.harness import run_proxy_case
    from repro.runtime.trace import TraceRecorder
    from repro.sip.workload import evaluation_cases

    root = tmp_path_factory.mktemp("cache-traces")
    by_id = {c.case_id: c for c in evaluation_cases()}
    out = {}
    for case_id in CASES:
        for config in CONFIGS:
            path = root / f"{case_id}-{config.replace('+', '_')}.rptr"
            det = HelgrindDetector(_config(config, cache=False))
            with TraceRecorder(path, format="binary") as recorder:
                run_proxy_case(by_id[case_id], config, seed=42,
                               detector=det, extra_hooks=(recorder,))
            out[(case_id, config)] = (path, _report_bytes(det.report))
    return out


# ----------------------------------------------------------------------
# Byte-identity: live path, cache on vs off
# ----------------------------------------------------------------------


class TestLiveByteIdentity:
    @pytest.mark.parametrize("config", CONFIGS)
    @pytest.mark.parametrize("case_id", CASES)
    def test_cached_live_run_matches_uncached(self, traces, case_id, config):
        from repro.experiments.harness import run_proxy_case
        from repro.sip.workload import evaluation_cases

        _, reference = traces[(case_id, config)]
        case = next(c for c in evaluation_cases() if c.case_id == case_id)
        det = HelgrindDetector(_config(config, cache=True))
        run_proxy_case(case, config, seed=42, detector=det)
        assert _report_bytes(det.report) == reference
        stats = det.machine.transition_cache_stats()
        assert stats["hits"] > 0  # the memo actually carried load


# ----------------------------------------------------------------------
# Byte-identity: batched block replay, cache on vs off vs live
# ----------------------------------------------------------------------


class TestReplayByteIdentity:
    @pytest.mark.parametrize("config", CONFIGS)
    @pytest.mark.parametrize("case_id", CASES)
    def test_bulk_replay_matches_uncached_and_live(
        self, traces, case_id, config
    ):
        path, reference = traces[(case_id, config)]

        cached = HelgrindDetector(_config(config, cache=True))
        assert cached.bulk_access_ready()  # blocks go through bulk_access
        replay_trace(path, cached)
        assert _report_bytes(cached.report) == reference

        uncached = HelgrindDetector(_config(config, cache=False))
        assert not uncached.bulk_access_ready()
        replay_trace(path, uncached)
        assert _report_bytes(uncached.report) == reference

        # Elision and batching must not change the access accounting.
        assert cached._access_checks == uncached._access_checks

    def test_bulk_replay_survives_forced_evictions(
        self, traces, monkeypatch
    ):
        """A capacity-crushed memo evicts mid-replay and still reproduces
        the reference bytes (eviction is a pure cache event)."""
        from repro.detectors import lockset

        monkeypatch.setattr(lockset, "_MEMO_CAP", 4)
        path, reference = traces[("T2", "hwlc+dr")]
        det = HelgrindDetector(_config("hwlc+dr", cache=True))
        replay_trace(path, det)
        assert _report_bytes(det.report) == reference
        assert det.machine.transition_cache_stats()["evictions"] > 0

    def test_djit_elision_is_invisible(self, traces):
        path, _ = traces[("T1", "hwlc+dr")]
        plain = DjitDetector(elide=False)
        replay_trace(path, plain)
        eliding = DjitDetector(elide=True)
        replay_trace(path, eliding)
        assert _report_bytes(eliding.report) == _report_bytes(plain.report)
        assert plain._elided == 0


# ----------------------------------------------------------------------
# Counters
# ----------------------------------------------------------------------


class TestCounters:
    def test_memo_counters_tally(self, traces):
        path, _ = traces[("T1", "hwlc+dr")]
        det = HelgrindDetector(_config("hwlc+dr", cache=True))
        replay_trace(path, det)
        stats = det.machine.transition_cache_stats()
        assert stats["hits"] > 0
        assert stats["misses"] > 0
        assert stats["size"] == len(det.machine._memo)
        assert stats["evictions"] == 0  # default cap is far above T1

    def test_disabled_machine_reports_zeros(self, traces):
        path, _ = traces[("T1", "hwlc+dr")]
        det = HelgrindDetector(_config("hwlc+dr", cache=False))
        replay_trace(path, det)
        assert det.machine.transition_cache_stats() == {
            "hits": 0, "misses": 0, "evictions": 0, "size": 0,
        }
        assert det._elided == 0

    def test_elision_fires_on_repeated_accesses(self):
        """Two identical back-to-back accesses: the second is absorbed
        and the check counter still advances (parity with uncached)."""
        from repro.runtime.events import AccessKind, MemoryAccess

        def access(step):
            return MemoryAccess(
                step=step, tid=1, stack=(), addr=64,
                kind=AccessKind.READ, bus_locked=False, block_id=0,
            )

        det = HelgrindDetector(_config("hwlc+dr", cache=True))
        det._on_access(access(0), None)
        det._on_access(access(1), None)
        assert det._elided == 1
        assert det._access_checks == 2

        plain = HelgrindDetector(_config("hwlc+dr", cache=False))
        plain._on_access(access(0), None)
        plain._on_access(access(1), None)
        assert plain._elided == 0
        assert plain._access_checks == 2


# ----------------------------------------------------------------------
# Gates: defaults, overrides, bulk readiness, pickling
# ----------------------------------------------------------------------


class TestGates:
    def test_process_default_toggle(self):
        assert transition_cache_default() is True  # ships enabled
        try:
            set_transition_cache_default(False)
            assert transition_cache_default() is False
            machine = LocksetMachine(SegmentGraph())
            assert machine._memo is None
            det = HelgrindDetector(profile("hwlc+dr").config())
            assert det.machine._memo is None
            assert not det._elide_ok
            assert not det.bulk_access_ready()
        finally:
            set_transition_cache_default(True)

    def test_config_override_beats_default(self):
        try:
            set_transition_cache_default(False)
            det = HelgrindDetector(_config("hwlc+dr", cache=True))
            assert det.machine._memo is not None
        finally:
            set_transition_cache_default(True)
        det = HelgrindDetector(_config("hwlc+dr", cache=False))
        assert det.machine._memo is None

    def test_bulk_ready_requires_exact_shape(self):
        # Access history keeps per-access side effects the bulk loop
        # does not model; the no-states ablation skips access_check's
        # fast path entirely; subclasses may override handlers.
        hist = HelgrindDetector(
            dataclasses.replace(
                profile("hwlc+dr").config(),
                access_history=True, transition_cache=True,
            )
        )
        assert not hist.bulk_access_ready()
        raw = HelgrindDetector(
            dataclasses.replace(
                profile("raw-eraser").config(), transition_cache=True
            )
        )
        assert not raw.bulk_access_ready()

        class Sub(HelgrindDetector):
            pass

        assert not Sub(_config("hwlc+dr", cache=True)).bulk_access_ready()

    def test_codec_bulk_resolution(self):
        """Only a sole bound MemoryAccess subscriber with an opted-in
        owner resolves to a bulk consumer; everything else is None."""
        from repro.runtime import codec

        det = HelgrindDetector(_config("hwlc+dr", cache=True))
        fn = det._on_access
        idx = codec._ACCESS_TYPE_IDX
        assert codec._bulk_for(idx, (fn,)) == det.bulk_access
        assert codec._bulk_for(idx, (fn, fn)) is None  # several handlers
        assert codec._bulk_for(idx + 1, (fn,)) is None  # wrong type
        assert codec._bulk_for(idx, (lambda e, vm: None,)) is None  # closure
        off = HelgrindDetector(_config("hwlc+dr", cache=False))
        assert codec._bulk_for(idx, (off._on_access,)) is None

    def test_pickle_ships_an_empty_memo(self, traces):
        path, _ = traces[("T1", "hwlc+dr")]
        det = HelgrindDetector(_config("hwlc+dr", cache=True))
        replay_trace(path, det)
        assert det.machine._memo  # non-empty before the round-trip
        clone = pickle.loads(pickle.dumps(det.machine))
        assert clone._memo == {}  # enabled but emptied: values embed
        assert clone.transition_cache  # process-local lockset ids
