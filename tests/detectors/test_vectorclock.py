"""Property and unit tests for vector clocks."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.detectors.vectorclock import VectorClock

clock_dicts = st.dictionaries(st.integers(0, 5), st.integers(0, 20), max_size=6)


class TestBasics:
    def test_missing_entries_read_zero(self):
        vc = VectorClock()
        assert vc[3] == 0
        assert vc.get(3) == 0

    def test_tick(self):
        vc = VectorClock()
        vc.tick(1)
        vc.tick(1)
        assert vc[1] == 2

    def test_join_pointwise_max(self):
        a = VectorClock({0: 3, 1: 1})
        b = VectorClock({1: 5, 2: 2})
        a.join(b)
        assert a.as_dict() == {0: 3, 1: 5, 2: 2}

    def test_joined_does_not_mutate(self):
        a = VectorClock({0: 1})
        b = VectorClock({1: 1})
        c = a.joined(b)
        assert a.as_dict() == {0: 1}
        assert c.as_dict() == {0: 1, 1: 1}

    def test_copy_is_independent(self):
        a = VectorClock({0: 1})
        b = a.copy()
        b.tick(0)
        assert a[0] == 1
        assert b[0] == 2

    def test_equality_ignores_zero_entries(self):
        assert VectorClock({0: 1, 1: 0}) == VectorClock({0: 1})

    def test_covers(self):
        vc = VectorClock({2: 7})
        assert vc.covers(2, 7)
        assert vc.covers(2, 3)
        assert not vc.covers(2, 8)
        assert vc.covers(9, 0)

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(VectorClock())


class TestOrder:
    def test_leq_reflexive(self):
        vc = VectorClock({0: 2, 1: 3})
        assert vc.leq(vc)

    def test_leq_examples(self):
        a = VectorClock({0: 1})
        b = VectorClock({0: 2, 1: 1})
        assert a.leq(b)
        assert not b.leq(a)

    def test_concurrent(self):
        a = VectorClock({0: 1})
        b = VectorClock({1: 1})
        assert a.concurrent_with(b)
        assert b.concurrent_with(a)

    def test_not_concurrent_when_ordered(self):
        a = VectorClock({0: 1})
        b = VectorClock({0: 1, 1: 1})
        assert not a.concurrent_with(b)


@given(clock_dicts, clock_dicts)
def test_property_join_is_least_upper_bound(da, db):
    a, b = VectorClock(da), VectorClock(db)
    j = a.joined(b)
    assert a.leq(j) and b.leq(j)
    # Least: any other upper bound dominates j.
    tids = set(da) | set(db)
    for t in tids:
        assert j[t] == max(a[t], b[t])


@given(clock_dicts, clock_dicts)
def test_property_join_commutative(da, db):
    assert VectorClock(da).joined(VectorClock(db)) == VectorClock(db).joined(
        VectorClock(da)
    )


@given(clock_dicts, clock_dicts, clock_dicts)
def test_property_join_associative(da, db, dc):
    a1 = VectorClock(da).joined(VectorClock(db)).joined(VectorClock(dc))
    a2 = VectorClock(da).joined(VectorClock(db).joined(VectorClock(dc)))
    assert a1 == a2


@given(clock_dicts, clock_dicts)
def test_property_leq_antisymmetric(da, db):
    a, b = VectorClock(da), VectorClock(db)
    if a.leq(b) and b.leq(a):
        assert a == b


@given(clock_dicts, clock_dicts, clock_dicts)
def test_property_leq_transitive(da, db, dc):
    a, b, c = VectorClock(da), VectorClock(db), VectorClock(dc)
    if a.leq(b) and b.leq(c):
        assert a.leq(c)
