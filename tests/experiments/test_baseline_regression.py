"""Byte-identical report baselines across the analysis fast path.

The fast path (interned lock-sets, ExeContext stack interning,
dispatch-table event routing, load/store block fusion) must be
*behaviour-preserving*: same Figure-6 location counts, same warning
stacks, same details, same dynamic occurrence counts.  The JSON files
under ``tests/data/baseline_reports/`` were generated from the pre-fast-
path detector; this test regenerates T1-T3 under all three evaluation
configurations and demands the serialised reports match byte for byte.

Regenerate (only after an *intentional* behaviour change)::

    PYTHONPATH=src python tests/experiments/test_baseline_regression.py

and review the diff like any golden-file update.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.detectors import HelgrindDetector, Report
from repro.detectors.helgrind import HelgrindConfig
from repro.experiments.harness import run_proxy_case
from repro.sip.workload import evaluation_cases

BASELINE_DIR = Path(__file__).resolve().parent.parent / "data" / "baseline_reports"

CASES = ("T1", "T2", "T3")
CONFIGS = {
    "original": HelgrindConfig.original,
    "hwlc": HelgrindConfig.hwlc,
    "hwlc_dr": HelgrindConfig.hwlc_dr,
}
#: File-name config key -> harness config name.
_HARNESS_NAMES = {"original": "original", "hwlc": "hwlc", "hwlc_dr": "hwlc+dr"}


def _generate(case_id: str, config_key: str) -> Report:
    """One detector report, exactly as the Figure-6 harness produces it."""
    case = next(c for c in evaluation_cases() if c.case_id == case_id)
    detector = HelgrindDetector(CONFIGS[config_key]())
    run_proxy_case(case, _HARNESS_NAMES[config_key], detector=detector)
    return detector.report


def _baseline_path(case_id: str, config_key: str) -> Path:
    return BASELINE_DIR / f"{case_id}_{config_key}.json"


@pytest.mark.parametrize("case_id", CASES)
@pytest.mark.parametrize("config_key", sorted(CONFIGS))
def test_report_matches_pre_fastpath_baseline(case_id, config_key, tmp_path):
    path = _baseline_path(case_id, config_key)
    assert path.exists(), (
        f"missing baseline {path}; regenerate with "
        "`PYTHONPATH=src python tests/experiments/test_baseline_regression.py`"
    )
    report = _generate(case_id, config_key)

    # Byte-identical serialisation against the stored golden file.
    regenerated = tmp_path / path.name
    report.save(regenerated)
    assert regenerated.read_bytes() == path.read_bytes(), (
        f"{case_id}/{config_key}: classified report changed across the "
        "fast path — the optimisation must be behaviour-preserving"
    )

    # Save/load round-trip preserves the Figure-6 metrics and stacks.
    loaded = Report.load(path)
    assert loaded.location_count == report.location_count
    assert loaded.dynamic_count == report.dynamic_count
    assert [w.stack for w in loaded] == [w.stack for w in report]
    assert [w.location_key for w in loaded] == [w.location_key for w in report]


def test_baseline_files_are_valid_json():
    for case_id in CASES:
        for config_key in CONFIGS:
            data = json.loads(
                _baseline_path(case_id, config_key).read_text(encoding="utf-8")
            )
            assert data["warnings"], (case_id, config_key)


def main() -> None:  # pragma: no cover - manual regeneration entry point
    BASELINE_DIR.mkdir(parents=True, exist_ok=True)
    for case_id in CASES:
        for config_key in CONFIGS:
            report = _generate(case_id, config_key)
            path = _baseline_path(case_id, config_key)
            report.save(path)
            print(f"wrote {path} ({report.location_count} locations)")


if __name__ == "__main__":  # pragma: no cover
    main()
