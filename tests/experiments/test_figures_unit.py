"""Unit tests for the figure formatters and shape checks (synthetic data)."""

from __future__ import annotations

from repro.detectors.classify import ClassifiedReport
from repro.experiments.figures import (
    PAPER_FIGURE6,
    figure6_table,
    shape_violations,
)
from repro.experiments.harness import ExperimentRun, Figure6Row
from repro.sip.server import ProxyResult


def synthetic_row(case_id: str, original: int, hwlc: int, hwlc_dr: int) -> Figure6Row:
    row = Figure6Row(case_id)
    for name, count in (
        ("original", original),
        ("hwlc", hwlc),
        ("hwlc+dr", hwlc_dr),
    ):
        row.runs[name] = ExperimentRun(
            case_id=case_id,
            config_name=name,
            location_count=count,
            classified=ClassifiedReport(),
            proxy_result=ProxyResult(),
            events=100,
            wall_seconds=0.01,
        )
    return row


class TestShapeViolations:
    def test_clean_rows_pass(self):
        rows = [synthetic_row("T1", 100, 80, 25), synthetic_row("T2", 60, 50, 20)]
        assert shape_violations(rows) == []

    def test_non_monotone_flagged(self):
        rows = [synthetic_row("T1", 80, 100, 25)]
        problems = shape_violations(rows)
        assert any("not monotone" in p for p in problems)

    def test_weak_annotation_flagged(self):
        rows = [synthetic_row("T1", 100, 80, 60)]  # 60 >= 80/2
        problems = shape_violations(rows)
        assert any("less than half" in p for p in problems)

    def test_out_of_band_removal_flagged(self):
        rows = [synthetic_row("T1", 100, 99, 98)]  # 2% removal
        problems = shape_violations(rows)
        assert any("65%-81%" in p for p in problems)

    def test_empty_rows(self):
        assert shape_violations([]) == []


class TestFigure6Table:
    def test_includes_paper_reference_columns(self):
        rows = [synthetic_row("T1", 100, 80, 25)]
        table = figure6_table(rows)
        assert "483/448/120" in table  # the paper's T1
        assert "75%" in table  # the paper's T1 removal

    def test_unknown_case_renders_zeros(self):
        rows = [synthetic_row("T9", 10, 8, 3)]
        table = figure6_table(rows)
        assert "0/0/0" in table

    def test_removal_fraction(self):
        row = synthetic_row("T1", 100, 80, 25)
        assert row.removal_fraction == 0.75
        empty = synthetic_row("T1", 0, 0, 0)
        assert empty.removal_fraction == 0.0

    def test_paper_constants_sane(self):
        for case, (o, h, d) in PAPER_FIGURE6.items():
            assert o >= h >= d > 0, case
            assert d < h / 2 + 1, case  # "more than a half in all cases"
