"""§4's debugging-loop property: fixing a defect and re-running.

"it is generally a good idea to rerun the test suite after fixing a
problem.  Then, all warnings related to the corrected defect will
disappear and do not have to be considered again."
"""

from __future__ import annotations

import pytest

from repro.detectors import HelgrindConfig, HelgrindDetector
from repro.detectors.classify import classify_report
from repro.oracle import GroundTruth
from repro.runtime import VM, RandomScheduler
from repro.sip.bugs import EVALUATION_BUGS
from repro.sip.server import ProxyConfig, SipProxy
from repro.sip.workload import evaluation_cases


def triage(bugs, *, seed=42):
    truth = GroundTruth()
    proxy = SipProxy(ProxyConfig(bugs=bugs, instrumented=True), truth=truth)
    det = HelgrindDetector(HelgrindConfig.hwlc_dr())
    vm = VM(detectors=(det,), scheduler=RandomScheduler(seed), step_limit=10_000_000)
    vm.run(proxy.main, evaluation_cases()[3].wires)
    return classify_report(det.report, truth)


@pytest.mark.slow
class TestFixAndRerun:
    def test_fixing_one_bug_removes_exactly_its_warnings(self):
        before = triage(EVALUATION_BUGS)
        assert "unlocked-stats" in before.bug_ids_found()

        after = triage(EVALUATION_BUGS - {"unlocked-stats"})
        # The corrected defect's warnings disappear...
        assert "unlocked-stats" not in after.bug_ids_found()
        # ...and the other defects' findings survive the fix.
        assert before.bug_ids_found() - {"unlocked-stats"} <= after.bug_ids_found()

    def test_fixing_everything_empties_the_worklist(self):
        fixed = triage(frozenset())
        assert fixed.true_races == 0

    def test_fix_loop_terminates(self):
        """Iteratively fix the first reported bug until none remain —
        the analyst's §4 workflow converges."""
        remaining = EVALUATION_BUGS
        for _ in range(len(EVALUATION_BUGS) + 1):
            classified = triage(remaining)
            found = classified.bug_ids_found()
            if not found:
                break
            remaining = remaining - {sorted(found)[0]}
        else:  # pragma: no cover - would mean divergence
            raise AssertionError("fix loop did not converge")
        assert triage(remaining).true_races == 0
