"""Tests for the experiment harness — the paper's qualitative claims.

The full Figure 6 sweep runs once (module-scoped fixture) and every
claim the paper makes about its own numbers is asserted against our
measured rows.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import (
    PAPER_FIGURE6,
    figure5_decomposition,
    figure6_table,
    shape_violations,
)
from repro.experiments.harness import run_figure6, run_proxy_case
from repro.oracle import WarningCategory
from repro.sip.workload import evaluation_cases


@pytest.fixture(scope="module")
def figure6_rows():
    return run_figure6()


class TestFigure6Shape:
    def test_eight_rows(self, figure6_rows):
        assert [r.case_id for r in figure6_rows] == [f"T{i}" for i in range(1, 9)]
        assert set(PAPER_FIGURE6) == {r.case_id for r in figure6_rows}

    def test_monotone_in_every_case(self, figure6_rows):
        for row in figure6_rows:
            assert row.original > row.hwlc > row.hwlc_dr, row.case_id

    def test_annotation_removes_more_than_half(self, figure6_rows):
        """'This further reduces the amount of reported possible data
        races by more than a half in all cases.'"""
        for row in figure6_rows:
            assert row.hwlc_dr < row.hwlc / 2, row.case_id

    def test_total_removal_near_paper_band(self, figure6_rows):
        """'in the range of 65% to 81% of the total number of warnings'
        (we allow a modest widening for the smaller subject)."""
        for row in figure6_rows:
            assert 0.55 <= row.removal_fraction <= 0.90, (
                row.case_id,
                row.removal_fraction,
            )

    def test_no_shape_violations(self, figure6_rows):
        assert shape_violations(figure6_rows) == []

    def test_remaining_warnings_are_mostly_real(self, figure6_rows):
        """§4: 'the number of reported data races is significant and
        most of them are real synchronization failures.'"""
        for row in figure6_rows:
            final = row.runs["hwlc+dr"].classified
            assert final.true_races >= final.false_positives, row.case_id

    def test_decompositions_agree(self, figure6_rows):
        """The config-diff decomposition (how the paper derives Figure 5)
        matches the oracle's classification of the Original run."""
        for row in figure6_rows:
            original = row.runs["original"]
            assert row.original - row.hwlc == original.fp_count(
                WarningCategory.FP_HW_LOCK
            ), row.case_id
            assert row.hwlc - row.hwlc_dr == original.fp_count(
                WarningCategory.FP_DESTRUCTOR
            ), row.case_id

    def test_destructor_fps_dominate(self, figure6_rows):
        """Figure 5: 'the smaller (top) part counts warnings due to
        misinterpretation of the hardware bus lock, the bigger part due
        to accesses in the destructor'."""
        for row in figure6_rows:
            original = row.runs["original"]
            assert original.fp_count(WarningCategory.FP_DESTRUCTOR) > original.fp_count(
                WarningCategory.FP_HW_LOCK
            ), row.case_id

    def test_tables_render(self, figure6_rows):
        table = figure6_table(figure6_rows)
        assert "T1" in table and "HWLC+DR" in table and "483/448/120" in table
        decomposition = figure5_decomposition(figure6_rows)
        assert "FP dtor" in decomposition


class TestRunProxyCase:
    def test_single_cell(self):
        case = evaluation_cases()[2]
        run = run_proxy_case(case, "hwlc")
        assert run.case_id == "T3"
        assert run.config_name == "hwlc"
        assert run.location_count > 0
        assert run.events > 0
        assert run.wall_seconds > 0
        assert run.proxy_result.handled > 0

    def test_determinism_same_seed(self):
        case = evaluation_cases()[2]
        a = run_proxy_case(case, "original", seed=5)
        b = run_proxy_case(case, "original", seed=5)
        assert a.location_count == b.location_count
        assert a.events == b.events

    def test_thread_pool_mode(self):
        case = evaluation_cases()[1]
        run = run_proxy_case(case, "hwlc+dr", mode="thread-pool")
        assert run.fp_count(WarningCategory.FP_OWNERSHIP) > 0

    def test_extended_config_clears_pool_fps(self):
        case = evaluation_cases()[1]
        run = run_proxy_case(case, "extended", mode="thread-pool")
        assert run.fp_count(WarningCategory.FP_OWNERSHIP) == 0
