"""Robustness of the headline conclusions across seeds and modes.

The paper's claims should not hinge on one lucky interleaving: the
Figure 6 shape must hold under different scheduler seeds, and the
thread-pool variant must add exactly the Figure 11 FP class on top.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import shape_violations
from repro.experiments.harness import run_figure6, run_proxy_case
from repro.oracle import WarningCategory
from repro.sip.workload import evaluation_cases


@pytest.mark.slow
@pytest.mark.parametrize("seed", [7, 1234])
def test_figure6_shape_holds_on_other_seeds(seed):
    rows = run_figure6(cases=evaluation_cases()[:3], seed=seed)
    assert shape_violations(rows) == []
    for row in rows:
        assert row.original > row.hwlc > row.hwlc_dr
        assert row.hwlc_dr < row.hwlc / 2


@pytest.mark.slow
def test_workload_seed_changes_counts_but_not_shape():
    """A different *workload* (different calls, same profiles) moves the
    absolute counts yet keeps every qualitative property."""
    cases = evaluation_cases(seed=99)
    rows = run_figure6(cases=cases[:3])
    assert shape_violations(rows) == []


@pytest.mark.slow
def test_thread_pool_mode_adds_ownership_class():
    """Pool dispatch adds the Figure 11 FP class on top of the usual mix
    (the paper's §4.2.3 prediction: 'the race detection algorithm will
    report more false positives')."""
    case = evaluation_cases()[1]
    per_request = run_proxy_case(case, "hwlc+dr", mode="thread-per-request")
    pooled = run_proxy_case(case, "hwlc+dr", mode="thread-pool")
    assert per_request.fp_count(WarningCategory.FP_OWNERSHIP) == 0
    assert pooled.fp_count(WarningCategory.FP_OWNERSHIP) > 0
    # ... and the extended configuration takes the addition back out.
    extended = run_proxy_case(case, "extended", mode="thread-pool")
    assert extended.fp_count(WarningCategory.FP_OWNERSHIP) == 0


@pytest.mark.slow
def test_true_bug_locations_survive_every_configuration():
    """Whatever FP class a configuration removes, the injected bugs'
    locations are never among the removals (the improvements are
    precision-only — §3.1: the annotations 'are not necessary' for
    detection)."""
    case = evaluation_cases()[0]
    bug_ids_per_config = []
    for config in ("original", "hwlc", "hwlc+dr"):
        run = run_proxy_case(case, config)
        bug_ids_per_config.append(run.classified.bug_ids_found())
    # Every configuration finds the same set of injected bugs.
    assert bug_ids_per_config[0] == bug_ids_per_config[1] == bug_ids_per_config[2]
    assert bug_ids_per_config[0]  # and it is non-empty


@pytest.mark.slow
def test_every_detector_survives_seed_sweep():
    """Crash-robustness soak: the full detector stack over many seeds."""
    from repro.detectors import (
        DjitDetector,
        HelgrindConfig,
        HelgrindDetector,
        HybridDetector,
        LockGraphDetector,
        RaceTrackDetector,
    )
    from repro.detectors.atomizer import AtomizerDetector
    from repro.detectors.highlevel import HighLevelRaceDetector
    from repro.oracle import GroundTruth
    from repro.runtime import VM, RandomScheduler
    from repro.sip.bugs import EVALUATION_BUGS
    from repro.sip.server import ProxyConfig, SipProxy

    case = evaluation_cases()[2]
    for seed in range(6):
        detectors = (
            HelgrindDetector(HelgrindConfig.original()),
            HelgrindDetector(HelgrindConfig.extended()),
            DjitDetector(),
            HybridDetector(),
            RaceTrackDetector(),
            LockGraphDetector(),
            AtomizerDetector(),
            HighLevelRaceDetector(),
        )
        proxy = SipProxy(
            ProxyConfig(bugs=EVALUATION_BUGS, reaper_rounds=2), truth=GroundTruth()
        )
        vm = VM(
            detectors=detectors,
            scheduler=RandomScheduler(seed),
            step_limit=10_000_000,
        )
        result = vm.run(proxy.main, case.wires)
        assert result.handled > 0
        detectors[-1].finalize()
        # Sanity: the weakest config reports at least as much as the others.
        assert (
            detectors[0].report.location_count
            >= detectors[1].report.location_count
        )
