"""Tests for the §4.3/§4.5 studies and the performance harness."""

from __future__ import annotations

from repro.experiments.performance import (
    measure_performance,
    trace_cost,
    workload_guest,
    workload_native,
)
from repro.experiments.studies import (
    ablation_study,
    baseline_study,
    false_negative_study,
)
from repro.runtime import VM


class TestFalseNegativeStudy:
    def test_both_outcomes_occur(self):
        """§4.3: the race is found under some schedules and missed under
        others — neither always nor never."""
        study = false_negative_study(seeds=range(24))
        assert study.seeds_detected, "never detected: sweep too narrow"
        assert study.seeds_missed, "always detected: delayed init not modelled"
        assert study.total == 24

    def test_format(self):
        text = false_negative_study(seeds=range(6)).format()
        assert "schedules probed" in text


class TestAblationStudy:
    def test_each_refinement_reduces_warnings(self):
        study = ablation_study()
        for workload, row in study.counts.items():
            assert row["raw-eraser"] >= row["eraser-states"] >= row["helgrind"], workload

    def test_states_forgive_init_then_share(self):
        study = ablation_study()
        row = study.counts["init-then-share"]
        assert row["raw-eraser"] > 0
        assert row["eraser-states"] == 0

    def test_segments_forgive_create_join_handoff(self):
        study = ablation_study()
        row = study.counts["create-join-handoff"]
        assert row["eraser-states"] > 0
        assert row["helgrind"] == 0

    def test_format(self):
        assert "raw Eraser" in ablation_study().format()


class TestBaselineStudy:
    def test_djit_subset_of_lockset(self):
        study = baseline_study()
        assert study.djit_addrs <= study.lockset_addrs
        assert study.djit_addrs < study.lockset_addrs  # strictly fewer

    def test_hybrid_between(self):
        study = baseline_study()
        assert study.hybrid_addrs <= study.lockset_addrs

    def test_all_find_the_true_race(self):
        study = baseline_study()
        assert study.lockset_addrs & study.djit_addrs & study.hybrid_addrs


class TestPerformance:
    def test_workloads_agree(self):
        """The native and guest workloads compute the same answer."""
        native = workload_native(n_threads=2, iterations=32)
        guest = VM().run(workload_guest, 2, 32)
        assert native == guest

    def test_tiers_ordered(self):
        report = measure_performance(n_threads=2, iterations=40, repeats=2)
        assert report.native_seconds < report.vm_seconds
        for name in report.detector_seconds:
            # Analysis is never (much) cheaper than no analysis; the
            # slack absorbs host-timer noise on this tiny workload.
            assert report.analysis_overhead(name) >= 0.7

    def test_report_format(self):
        report = measure_performance(n_threads=2, iterations=30, repeats=1)
        text = report.format()
        assert "VM only" in text and "paper: 8-10x" in text

    def test_trace_cost(self):
        cost = trace_cost(n_threads=2, iterations=40)
        assert cost["events"] > 0
        assert cost["estimated_bytes"] > cost["events"]  # >1 byte/event
        assert cost["replay_seconds"] > 0
