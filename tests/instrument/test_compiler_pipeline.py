"""Tests for the MiniCxx compiler and the full build pipeline."""

from __future__ import annotations

import pytest

from repro.cxx.allocator import AllocStrategy
from repro.detectors import HelgrindConfig, HelgrindDetector
from repro.errors import CompileError, DeadlockError, GuestFault
from repro.instrument import BuildOptions, BuildPipeline, compile_module, parse
from repro.oracle import GroundTruth
from repro.runtime import VM


def run_src(src, *, detectors=(), **compile_kw):
    program = compile_module(parse(src), **compile_kw)
    vm = VM(detectors=tuple(detectors))
    result = vm.run(program.main)
    return result, program


class TestBasicExecution:
    def test_return_value(self):
        result, _ = run_src("fn main() { return 6 * 7; }")
        assert result == 42

    def test_arithmetic_and_logic(self):
        src = """
        fn main() {
            var a = 10 % 3;
            var b = 7 / 2;
            var c = (a == 1) && (b == 3);
            var d = !c || false;
            if (c) { return b - a; }
            return d;
        }
        """
        result, _ = run_src(src)
        assert result == 2

    def test_while_loop(self):
        src = """
        fn main() {
            var total = 0;
            var i = 1;
            while (i <= 10) { total = total + i; i = i + 1; }
            return total;
        }
        """
        assert run_src(src)[0] == 55

    def test_function_calls_and_recursion(self):
        src = """
        fn fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fn main() { return fib(10); }
        """
        assert run_src(src)[0] == 55

    def test_print_collects_output(self):
        _, program = run_src('fn main() { print("a"); print(1 + 2); }')
        assert program.last_output == ["a", 3]

    def test_string_builtins(self):
        src = """
        fn main() {
            var s = string("hello");
            var t = scopy(s);
            var v = svalue(t);
            sdispose(t);
            sdispose(s);
            return v;
        }
        """
        assert run_src(src)[0] == "hello"

    def test_division_by_zero_faults(self):
        with pytest.raises(GuestFault, match="arithmetic"):
            run_src("fn main() { return 1 / 0; }")

    def test_undefined_variable_faults(self):
        with pytest.raises(GuestFault, match="undefined variable"):
            run_src("fn main() { return nope; }")

    def test_assert_builtin(self):
        run_src("fn main() { assert(1 + 1 == 2); }")
        with pytest.raises(GuestFault, match="assertion failed"):
            run_src("fn main() { assert(false); }")


class TestObjects:
    SRC = """
    class Animal {
        field legs;
        method speak() { return "..."; }
        method count() { return this.legs; }
    };
    class Dog : Animal {
        field name;
        method speak() { return "woof"; }
    };
    fn main() {
        var d = new Dog;
        d.legs = 4;
        d.name = "rex";
        var noise = d.speak();
        var legs = d.count();
        delete d;
        return noise + ":" + "legs";
    }
    """

    def test_virtual_dispatch_and_fields(self):
        result, _ = run_src(self.SRC)
        assert result == "woof:legs"

    def test_inherited_method_sees_this(self):
        src = """
        class A { field x; method get() { return this.x; } };
        class B : A { field y; };
        fn main() { var b = new B; b.x = 9; return b.get(); }
        """
        assert run_src(src)[0] == 9

    def test_dtor_body_runs(self):
        src = """
        class C { field x; dtor { print("dtor-ran"); } };
        fn main() { var c = new C; delete c; }
        """
        _, program = run_src(src)
        assert program.last_output == ["dtor-ran"]

    def test_delete_non_object_faults(self):
        with pytest.raises(GuestFault, match="non-object"):
            run_src("fn main() { delete 5; }")

    def test_member_on_non_object_faults(self):
        with pytest.raises(GuestFault, match="non-object"):
            run_src("fn main() { var x = 5; return x.field_name; }")


class TestGlobalsAndThreads:
    def test_globals_live_in_guest_memory(self):
        src = """
        global counter = 100;
        fn main() { counter = counter + 1; return counter; }
        """
        result, _ = run_src(src)
        assert result == 101

    def test_global_race_is_detectable(self):
        src = """
        global counter = 0;
        fn worker() {
            var i = 0;
            while (i < 5) { counter = counter + 1; i = i + 1; }
        }
        fn main() {
            var t1 = spawn worker();
            var t2 = spawn worker();
            join t1;
            join t2;
            return counter;
        }
        """
        det = HelgrindDetector(HelgrindConfig.hwlc())
        result, _ = run_src(src, detectors=(det,))
        assert det.report.location_count >= 1

    def test_mutex_protected_global_is_clean(self):
        src = """
        global counter = 0;
        global g_lock = 0;
        fn worker(m) {
            var i = 0;
            while (i < 5) {
                lock(m);
                counter = counter + 1;
                unlock(m);
                i = i + 1;
            }
        }
        fn main() {
            var m = mutex();
            var t1 = spawn worker(m);
            var t2 = spawn worker(m);
            join t1;
            join t2;
            lock(m);
            var result = counter;
            unlock(m);
            return result;
        }
        """
        det = HelgrindDetector(HelgrindConfig.hwlc())
        result, _ = run_src(src, detectors=(det,))
        assert result == 10
        assert det.report.location_count == 0

    def test_join_ordered_unlocked_read_still_warns(self):
        """A classic lock-set false positive the paper leaves standing:
        reading a previously lock-protected global without the lock —
        even after joining every writer — empties the candidate set
        (SHARED-MODIFIED never reverts to EXCLUSIVE in Figure 1)."""
        src = """
        global counter = 0;
        fn worker(m) {
            lock(m);
            counter = counter + 1;
            unlock(m);
        }
        fn main() {
            var m = mutex();
            var t1 = spawn worker(m);
            var t2 = spawn worker(m);
            join t1;
            join t2;
            return counter;
        }
        """
        det = HelgrindDetector(HelgrindConfig.hwlc())
        result, _ = run_src(src, detectors=(det,))
        assert result == 2
        assert det.report.location_count == 1

    def test_queue_between_threads(self):
        src = """
        fn worker(q, out) {
            var total = 0;
            var v = take(q);
            while (v != null) {
                total = total + v;
                v = take(q);
            }
            put(out, total);
        }
        fn main() {
            var q = queue();
            var out = queue();
            var t = spawn worker(q, out);
            var i = 1;
            while (i <= 4) { put(q, i); i = i + 1; }
            put(q, null);
            var result = take(out);
            join t;
            return result;
        }
        """
        assert run_src(src)[0] == 10

    def test_semaphores_and_condvars(self):
        src = """
        global flag = 0;
        fn waiter(m, cv, s) {
            lock(m);
            while (flag == 0) { cond_wait(cv, m); }
            unlock(m);
            sem_post(s);
        }
        fn main() {
            var m = mutex();
            var cv = condvar();
            var s = sem(0);
            var t = spawn waiter(m, cv, s);
            sleep(5);
            lock(m);
            flag = 1;
            cond_signal(cv);
            unlock(m);
            sem_wait(s);
            join t;
            return flag;
        }
        """
        assert run_src(src)[0] == 1

    def test_guest_deadlock_detected(self):
        src = """
        fn main() {
            var m = mutex();
            lock(m);
            lock(m);
        }
        """
        with pytest.raises((DeadlockError, GuestFault)):
            run_src(src)


class TestCompileErrors:
    @pytest.mark.parametrize(
        "src, match",
        [
            ("fn f() { }", "no 'main'"),
            ("fn main() { } fn main() { }", "duplicate function"),
            ("class C { }; class C { }; fn main() { }", "duplicate class"),
            ("class D : Missing { }; fn main() { }", "unknown base"),
            ("fn main() { var x = new Nope; }", "unknown class"),
            ("fn main() { frobnicate(); }", "unknown function"),
            ("fn main() { var t = spawn nada(); }", "unknown function"),
        ],
    )
    def test_static_errors(self, src, match):
        with pytest.raises(CompileError, match=match):
            compile_module(parse(src))

    def test_custom_entry(self):
        program = compile_module(parse("fn start() { return 7; }"), entry="start")
        assert VM().run(program.main) == 7


DERIVED_DELETE = """
class Base {
    field x;
    method get() { return this.x; }
};
class Derived : Base { field y; };

fn main() {
    var m = mutex();
    var obj = new Derived;
    obj.x = 1;
    var t1 = spawn reader(obj, m);
    var t2 = spawn reader(obj, m);
    sleep(8);
    delete obj;
    join t1;
    join t2;
}

fn reader(obj, m) {
    lock(m);
    var v = obj.get();
    unlock(m);
    sleep(20);
}
"""


class TestPipeline:
    def test_uninstrumented_build_warns_on_destructor(self):
        pipe = BuildPipeline()
        art = pipe.build(DERIVED_DELETE, BuildOptions(instrument=False))
        det = HelgrindDetector(HelgrindConfig.hwlc_dr())
        VM(detectors=(det,)).run(art.program.main)
        assert art.annotated_sites == 0
        assert det.report.location_count >= 1
        assert any("~" in w.site.function for w in det.report.warnings)

    def test_instrumented_build_is_clean(self):
        pipe = BuildPipeline()
        art = pipe.build(DERIVED_DELETE, BuildOptions(instrument=True))
        det = HelgrindDetector(HelgrindConfig.hwlc_dr())
        VM(detectors=(det,)).run(art.program.main)
        assert art.annotated_sites == art.delete_sites == 1
        assert det.report.location_count == 0

    def test_instrumentation_noop_without_detector(self):
        """§3.1: annotations 'could be inserted into production code'."""
        pipe = BuildPipeline()
        plain = pipe.build(DERIVED_DELETE, BuildOptions(instrument=False))
        annotated = pipe.build(DERIVED_DELETE, BuildOptions(instrument=True))
        r1 = VM().run(plain.program.main)
        r2 = VM().run(annotated.program.main)
        assert r1 == r2  # identical observable behaviour

    def test_headers_and_defines(self):
        pipe = BuildPipeline(includes={"config.h": "#define WORKERS 3\n"})
        src = """
        #include "config.h"
        global done = 0;
        fn main() { return WORKERS; }
        """
        art = pipe.build(src)
        assert VM().run(art.program.main) == 3

    def test_force_new_option_changes_allocator(self):
        pipe = BuildPipeline()
        art = pipe.build(
            "class C { field x; }; fn main() { var c = new C; delete c; }",
            BuildOptions(instrument=True, force_new_allocator=True),
        )
        assert art.program.alloc_strategy is AllocStrategy.FORCE_NEW

    def test_truth_threading(self):
        truth = GroundTruth()
        pipe = BuildPipeline(truth=truth)
        art = pipe.build(
            'fn main() { var s = string("x"); sdispose(s); }',
            BuildOptions(instrument=True),
        )
        VM().run(art.program.main)
        assert len(truth) >= 1  # the string refcount claim

    def test_artifacts_expose_intermediate_stages(self):
        pipe = BuildPipeline()
        art = pipe.build(DERIVED_DELETE, BuildOptions(instrument=True))
        assert "delete __ca_deletor_single(obj);" in art.annotated_source
        assert art.preprocessed  # flat translation unit retained
