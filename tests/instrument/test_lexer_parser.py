"""Tests for the MiniCxx lexer and parser."""

from __future__ import annotations

import pytest

from repro.errors import LexError, ParseError
from repro.instrument import ast_nodes as A
from repro.instrument.lexer import Token, tokenize
from repro.instrument.parser import parse


class TestLexer:
    def test_idents_keywords_ints(self):
        toks = tokenize("fn main() { var x = 42; }")
        kinds = [(t.kind, t.value) for t in toks[:5]]
        assert kinds == [
            ("kw", "fn"),
            ("ident", "main"),
            ("op", "("),
            ("op", ")"),
            ("op", "{"),
        ]
        assert ("int", 42) in [(t.kind, t.value) for t in toks]

    def test_strings_with_escapes(self):
        toks = tokenize('"a\\nb\\"c"')
        assert toks[0].kind == "string"
        assert toks[0].value == 'a\nb"c'

    def test_two_char_operators(self):
        toks = tokenize("a == b != c <= d >= e && f || g")
        ops = [t.value for t in toks if t.kind == "op"]
        assert ops == ["==", "!=", "<=", ">=", "&&", "||"]

    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  bb\n    c")
        positions = [(t.line, t.column) for t in toks if t.kind == "ident"]
        assert positions == [(1, 1), (2, 3), (3, 5)]

    def test_line_comments_skipped(self):
        toks = tokenize("a // comment with var fn class\nb")
        assert [t.value for t in toks if t.kind == "ident"] == ["a", "b"]

    def test_block_comments_skipped_with_newlines(self):
        toks = tokenize("a /* multi\nline */ b")
        idents = [t for t in toks if t.kind == "ident"]
        assert [t.value for t in idents] == ["a", "b"]
        assert idents[1].line == 2

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError, match="unterminated string"):
            tokenize('"abc')

    def test_newline_in_string_raises(self):
        with pytest.raises(LexError, match="newline in string"):
            tokenize('"ab\ncd"')

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError, match="unterminated block"):
            tokenize("/* never ends")

    def test_bad_character_raises(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("a @ b")

    def test_eof_token_terminates(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind == "eof"


class TestParserStructure:
    def test_empty_module(self):
        mod = parse("")
        assert mod.classes == [] and mod.functions == [] and mod.globals == []

    def test_function_decl(self):
        mod = parse("fn add(a, b) { return a + b; }")
        fn = mod.function("add")
        assert fn.params == ["a", "b"]
        assert isinstance(fn.body.body[0], A.Return)

    def test_class_with_everything(self):
        mod = parse(
            """
            class Req : Base {
                field sip_method;
                field uri;
                dtor { print("bye"); }
                method describe(prefix) { return prefix; }
            };
            """
        )
        cls = mod.cls("Req")
        assert cls.base == "Base"
        assert [f.name for f in cls.fields] == ["sip_method", "uri"]
        assert cls.dtor is not None
        assert cls.methods[0].name == "describe"

    def test_globals(self):
        mod = parse("global counter = 0;\nglobal uninitialised;")
        assert mod.globals[0].name == "counter"
        assert isinstance(mod.globals[0].init, A.IntLit)
        assert mod.globals[1].init is None

    def test_missing_function_keyerror(self):
        with pytest.raises(KeyError):
            parse("").function("nope")


class TestParserStatements:
    def _body(self, code):
        return parse(f"fn f() {{ {code} }}").function("f").body.body

    def test_var_decl(self):
        (stmt,) = self._body("var x = 1;")
        assert isinstance(stmt, A.VarDecl)
        assert stmt.name == "x"

    def test_if_else(self):
        (stmt,) = self._body("if (x > 0) { y = 1; } else { y = 2; }")
        assert isinstance(stmt, A.If)
        assert stmt.otherwise is not None

    def test_while(self):
        (stmt,) = self._body("while (i < 10) { i = i + 1; }")
        assert isinstance(stmt, A.While)

    def test_delete_and_join(self):
        stmts = self._body("delete p; join t;")
        assert isinstance(stmts[0], A.Delete)
        assert isinstance(stmts[1], A.Join)

    def test_member_assignment(self):
        (stmt,) = self._body("obj.x = 5;")
        assert isinstance(stmt, A.Assign)
        assert isinstance(stmt.target, A.Member)

    def test_assignment_to_literal_rejected(self):
        with pytest.raises(ParseError, match="assignment target"):
            self._body("5 = x;")

    def test_return_void(self):
        (stmt,) = self._body("return;")
        assert stmt.value is None


class TestParserExpressions:
    def _expr(self, code):
        (stmt,) = parse(f"fn f() {{ var r = {code}; }}").function("f").body.body
        return stmt.init

    def test_precedence_mul_over_add(self):
        e = self._expr("1 + 2 * 3")
        assert isinstance(e, A.Binary) and e.op == "+"
        assert isinstance(e.right, A.Binary) and e.right.op == "*"

    def test_precedence_cmp_over_and(self):
        e = self._expr("a < b && c > d")
        assert e.op == "&&"
        assert e.left.op == "<" and e.right.op == ">"

    def test_parentheses_override(self):
        e = self._expr("(1 + 2) * 3")
        assert e.op == "*"
        assert e.left.op == "+"

    def test_unary(self):
        e = self._expr("-x")
        assert isinstance(e, A.Unary) and e.op == "-"
        e = self._expr("!done")
        assert isinstance(e, A.Unary) and e.op == "!"

    def test_chained_member_access(self):
        e = self._expr("a.b.c")
        assert isinstance(e, A.Member) and e.field_name == "c"
        assert isinstance(e.obj, A.Member) and e.obj.field_name == "b"

    def test_method_call(self):
        e = self._expr("obj.run(1, 2)")
        assert isinstance(e, A.MethodCall)
        assert e.method == "run" and len(e.args) == 2

    def test_new_and_spawn(self):
        assert isinstance(self._expr("new Widget"), A.New)
        sp = self._expr("spawn worker(q, 5)")
        assert isinstance(sp, A.Spawn)
        assert sp.func == "worker" and len(sp.args) == 2

    def test_literals(self):
        assert self._expr("true").value is True
        assert self._expr("false").value is False
        assert isinstance(self._expr("null"), A.NullLit)
        assert self._expr('"hi"').value == "hi"

    def test_call_no_args(self):
        e = self._expr("mutex()")
        assert isinstance(e, A.Call) and e.args == []


class TestParserErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "fn f( { }",  # bad params
            "class C { field; };",  # missing field name
            "fn f() { var = 3; }",  # missing var name
            "fn f() { if x { } }",  # missing parens
            "garbage at top level",
            "fn f() { x + ; }",
            "class C { dtor {} dtor {} };",  # duplicate dtor
        ],
    )
    def test_bad_inputs_raise_parse_error(self, bad):
        with pytest.raises(ParseError):
            parse(bad)

    def test_error_carries_position(self):
        try:
            parse("fn f() {\n  var = 3;\n}")
        except ParseError as e:
            assert e.line == 2
        else:  # pragma: no cover
            raise AssertionError("expected ParseError")
