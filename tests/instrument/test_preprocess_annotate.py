"""Tests for the preprocessor, the annotation pass, and rendering."""

from __future__ import annotations

import pytest

from repro.errors import InstrumentError
from repro.instrument import ast_nodes as A
from repro.instrument.annotate import HELPER_NAME, annotate_module, count_delete_sites
from repro.instrument.parser import parse
from repro.instrument.preprocess import preprocess
from repro.instrument.render import render_module


class TestPreprocess:
    def test_passthrough(self):
        assert preprocess("fn main() { }") == "fn main() { }"

    def test_include(self):
        out = preprocess(
            '#include "defs.h"\nfn main() { }',
            includes={"defs.h": "global g = 1;"},
        )
        assert "global g = 1;" in out
        assert "fn main" in out

    def test_nested_includes(self):
        out = preprocess(
            '#include "a.h"',
            includes={"a.h": '#include "b.h"\nglobal a = 1;', "b.h": "global b = 2;"},
        )
        assert "global b = 2;" in out
        assert "global a = 1;" in out

    def test_missing_include_raises(self):
        with pytest.raises(InstrumentError, match="not found"):
            preprocess('#include "nope.h"')

    def test_circular_include_raises(self):
        with pytest.raises(InstrumentError, match="circular"):
            preprocess(
                '#include "a.h"',
                includes={"a.h": '#include "b.h"', "b.h": '#include "a.h"'},
            )

    def test_define_substitution(self):
        out = preprocess("#define MAX 10\nvar x = MAX;")
        assert "var x = 10;" in out

    def test_define_word_boundaries(self):
        out = preprocess("#define N 3\nvar NN = N;")
        assert "var NN = 3;" in out  # NN untouched, N replaced

    def test_undef(self):
        out = preprocess("#define X 1\n#undef X\nvar y = X;")
        assert "var y = X;" in out

    def test_ifdef_taken(self):
        out = preprocess("#define DEBUG\n#ifdef DEBUG\nvar d = 1;\n#endif\nvar e = 2;")
        assert "var d = 1;" in out and "var e = 2;" in out

    def test_ifdef_skipped(self):
        out = preprocess("#ifdef DEBUG\nvar d = 1;\n#endif\nvar e = 2;")
        assert "var d = 1;" not in out and "var e = 2;" in out

    def test_ifndef_and_else(self):
        out = preprocess("#ifndef X\nvar a = 1;\n#else\nvar b = 2;\n#endif")
        assert "var a = 1;" in out and "var b = 2;" not in out
        out2 = preprocess(
            "#ifdef X\nvar a = 1;\n#else\nvar b = 2;\n#endif", defines={"X": "1"}
        )
        assert "var a = 1;" in out2 and "var b = 2;" not in out2

    def test_nested_conditionals(self):
        src = "#ifdef A\n#ifdef B\nvar ab = 1;\n#endif\nvar a = 1;\n#endif"
        out = preprocess(src, defines={"A": "1"})
        assert "var a = 1;" in out and "var ab" not in out
        out2 = preprocess(src, defines={"A": "1", "B": "1"})
        assert "var ab = 1;" in out2

    def test_include_guards_work(self):
        header = "#ifndef GUARD\n#define GUARD\nglobal once = 1;\n#endif"
        out = preprocess(
            '#include "h.h"\n#include "h.h"', includes={"h.h": header}
        )
        assert out.count("global once = 1;") == 1

    def test_unterminated_ifdef_raises(self):
        with pytest.raises(InstrumentError, match="unterminated"):
            preprocess("#ifdef X\nvar a = 1;")

    def test_unknown_directive_raises(self):
        with pytest.raises(InstrumentError, match="unknown preprocessor"):
            preprocess("#pragma once")

    def test_command_line_defines(self):
        out = preprocess("var x = LIMIT;", defines={"LIMIT": "99"})
        assert "var x = 99;" in out

    def test_line_count_preserved(self):
        src = "#define A 1\nfn main() {\nvar x = A;\n}"
        out = preprocess(src)
        assert len(out.splitlines()) == len(src.splitlines())


DELETE_SRC = """
class Obj { field x; };
fn g(p) { delete p; }
fn h(p) {
    if (p.x > 0) { delete p; } else { delete p; }
}
fn main() { var o = new Obj; g(o); }
"""


class TestAnnotate:
    def test_counts_sites(self):
        mod = parse(DELETE_SRC)
        assert count_delete_sites(mod) == 3
        assert count_delete_sites(mod, annotated=True) == 0

    def test_annotation_wraps_every_site(self):
        mod = annotate_module(parse(DELETE_SRC))
        assert count_delete_sites(mod, annotated=True) == 3
        assert count_delete_sites(mod, annotated=False) == 0

    def test_helper_injected_once(self):
        mod = annotate_module(parse(DELETE_SRC))
        helpers = [f for f in mod.functions if f.name == HELPER_NAME]
        assert len(helpers) == 1
        assert helpers[0].synthetic

    def test_idempotent(self):
        once = annotate_module(parse(DELETE_SRC))
        twice = annotate_module(once)
        assert count_delete_sites(twice, annotated=True) == 3
        assert len([f for f in twice.functions if f.name == HELPER_NAME]) == 1
        # No double wrapping: delete __ca(__ca(p)) would show as a Call
        # whose argument is another helper Call.
        for node in A.walk(twice):
            if isinstance(node, A.Call) and node.func == HELPER_NAME:
                assert not (
                    isinstance(node.args[0], A.Call)
                    and node.args[0].func == HELPER_NAME
                )

    def test_input_module_untouched(self):
        mod = parse(DELETE_SRC)
        annotate_module(mod)
        assert count_delete_sites(mod, annotated=True) == 0
        assert all(f.name != HELPER_NAME for f in mod.functions)

    def test_no_deletes_no_helper(self):
        mod = annotate_module(parse("fn main() { var x = 1; }"))
        assert all(f.name != HELPER_NAME for f in mod.functions)


class TestRender:
    def test_roundtrip_parses(self):
        mod = parse(DELETE_SRC)
        text = render_module(mod)
        reparsed = parse(text)
        assert [c.name for c in reparsed.classes] == ["Obj"]
        assert {f.name for f in reparsed.functions} == {"g", "h", "main"}

    def test_annotated_source_shows_figure4_shape(self):
        mod = annotate_module(parse(DELETE_SRC))
        text = render_module(mod)
        assert f"fn {HELPER_NAME}(object)" in text
        assert f"delete {HELPER_NAME}(p);" in text
        assert "hg_destruct(object);" in text
        assert "return object;" in text

    def test_roundtrip_preserves_semantics(self):
        """render → parse → render is a fixed point."""
        mod = annotate_module(parse(DELETE_SRC))
        text1 = render_module(mod)
        text2 = render_module(parse(text1))
        assert text1 == text2

    def test_renders_all_constructs(self):
        src = """
        global g = 5;
        class A { field f; method m(x) { return x; } dtor { print("d"); } };
        fn main() {
            var v = -g;
            var s = "str";
            var t = spawn main();
            if (v < 0 && true) { v = v * 2; } else { v = 0; }
            while (v != 0) { v = v - 1; }
            join t;
            return null;
        }
        """
        text = render_module(parse(src))
        reparsed = parse(text)
        assert reparsed.cls("A").methods[0].name == "m"
        assert render_module(reparsed) == text
