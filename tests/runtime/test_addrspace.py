"""Tests for the guest address space."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import GuestFault
from repro.runtime.addrspace import AddressSpace


class TestAllocation:
    def test_alloc_returns_disjoint_blocks(self):
        mem = AddressSpace()
        a = mem.alloc(10, tag="a")
        b = mem.alloc(10, tag="b")
        assert a.end <= b.base  # monotone, never overlapping

    def test_alloc_never_reuses_addresses(self):
        mem = AddressSpace()
        a = mem.alloc(4)
        mem.free(a.base)
        b = mem.alloc(4)
        assert b.base != a.base

    def test_zero_size_faults(self):
        with pytest.raises(GuestFault):
            AddressSpace().alloc(0)

    def test_negative_size_faults(self):
        with pytest.raises(GuestFault):
            AddressSpace().alloc(-1)

    def test_block_metadata(self):
        mem = AddressSpace()
        blk = mem.alloc(8, tag="SipMessage", tid=3, step=99)
        assert blk.tag == "SipMessage"
        assert blk.alloc_tid == 3
        assert blk.alloc_step == 99
        assert blk.size == 8
        assert not blk.freed

    def test_null_address_is_unmapped(self):
        mem = AddressSpace()
        assert mem.find_block(0) is None


class TestLoadStore:
    def test_store_then_load(self):
        mem = AddressSpace()
        blk = mem.alloc(4)
        mem.store(blk.base + 2, "hello")
        assert mem.load(blk.base + 2) == "hello"

    def test_uninitialised_load_faults(self):
        mem = AddressSpace()
        blk = mem.alloc(4)
        with pytest.raises(GuestFault, match="uninitialised"):
            mem.load(blk.base)

    def test_wild_store_faults(self):
        mem = AddressSpace()
        with pytest.raises(GuestFault, match="wild"):
            mem.store(0xDEAD, 1)

    def test_out_of_bounds_faults(self):
        mem = AddressSpace()
        blk = mem.alloc(4)
        with pytest.raises(GuestFault):
            mem.store(blk.end, 1)  # one past the end (guard gap)

    def test_peek_never_faults(self):
        mem = AddressSpace()
        blk = mem.alloc(2)
        assert mem.peek(blk.base) is None
        mem.store(blk.base, 7)
        assert mem.peek(blk.base) == 7

    def test_is_initialised(self):
        mem = AddressSpace()
        blk = mem.alloc(2)
        assert not mem.is_initialised(blk.base)
        mem.store(blk.base, 0)
        assert mem.is_initialised(blk.base)


class TestFree:
    def test_free_marks_block(self):
        mem = AddressSpace()
        blk = mem.alloc(4)
        mem.free(blk.base, tid=2, step=5)
        assert blk.freed
        assert blk.free_tid == 2

    def test_use_after_free_faults(self):
        mem = AddressSpace()
        blk = mem.alloc(4)
        mem.store(blk.base, 1)
        mem.free(blk.base)
        with pytest.raises(GuestFault, match="freed"):
            mem.load(blk.base)
        with pytest.raises(GuestFault, match="freed"):
            mem.store(blk.base, 2)

    def test_double_free_faults(self):
        mem = AddressSpace()
        blk = mem.alloc(4)
        mem.free(blk.base)
        with pytest.raises(GuestFault, match="double free"):
            mem.free(blk.base)

    def test_interior_free_faults(self):
        mem = AddressSpace()
        blk = mem.alloc(4)
        with pytest.raises(GuestFault, match="interior"):
            mem.free(blk.base + 1)

    def test_free_of_unallocated_faults(self):
        with pytest.raises(GuestFault, match="unallocated"):
            AddressSpace().free(0x777)

    def test_free_drops_contents(self):
        mem = AddressSpace()
        blk = mem.alloc(2)
        mem.store(blk.base, "secret")
        mem.free(blk.base)
        assert mem.peek(blk.base) is None


class TestLookup:
    def test_find_block_interior(self):
        mem = AddressSpace()
        blk = mem.alloc(10)
        assert mem.find_block(blk.base + 5) is blk

    def test_find_block_guard_gap(self):
        mem = AddressSpace()
        blk = mem.alloc(10)
        mem.alloc(10)
        assert mem.find_block(blk.end) is None  # guard gap between blocks

    def test_find_block_includes_freed(self):
        mem = AddressSpace()
        blk = mem.alloc(4)
        mem.free(blk.base)
        assert mem.find_block(blk.base) is blk

    def test_block_by_id(self):
        mem = AddressSpace()
        blk = mem.alloc(4)
        assert mem.block_by_id(blk.block_id) is blk

    def test_live_and_leak_reporting(self):
        mem = AddressSpace()
        a = mem.alloc(4)
        b = mem.alloc(4)
        mem.free(a.base)
        assert mem.live_blocks() == [b]
        assert mem.leak_report() == [b]

    def test_describe_mentions_offset_and_tag(self):
        mem = AddressSpace()
        blk = mem.alloc(21, tag="string.rep", tid=1)
        text = blk.describe(blk.base + 8)
        assert "8 words inside a block of size 21" in text
        assert "string.rep" in text
        assert "thread 1" in text


@given(st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=50))
def test_property_blocks_never_overlap(sizes):
    """No two allocations ever share an address, regardless of sizes."""
    mem = AddressSpace()
    blocks = [mem.alloc(s) for s in sizes]
    spans = sorted((b.base, b.end) for b in blocks)
    for (_, prev_end), (next_base, _) in zip(spans, spans[1:]):
        assert prev_end <= next_base


@given(
    st.lists(
        st.tuples(st.integers(0, 49), st.integers(0, 63)), min_size=1, max_size=200
    )
)
def test_property_store_load_roundtrip(ops):
    """A load always returns the most recent store to that word."""
    mem = AddressSpace()
    blocks = [mem.alloc(64) for _ in range(50)]
    shadow: dict[int, int] = {}
    for i, (blk_idx, offset) in enumerate(ops):
        addr = blocks[blk_idx].base + offset
        mem.store(addr, i)
        shadow[addr] = i
    for addr, expected in shadow.items():
        assert mem.load(addr) == expected
