"""Determinism and serialisability properties of the VM.

These are the properties DESIGN.md's testing strategy calls out: the
whole experimental methodology rests on runs being exact functions of
(program, scheduler, seed).
"""

from __future__ import annotations

import threading

from hypothesis import given, settings, strategies as st

from repro.runtime import VM, RandomScheduler, StickyScheduler
from repro.runtime.trace import TraceRecorder


def _workload(api):
    """A program exercising memory, locks, queues and thread churn."""
    addr = api.malloc(4, tag="shared")
    for i in range(4):
        api.store(addr + i, 0)
    m = api.mutex()
    q = api.queue()

    def worker(a, k):
        with a.frame(f"worker{k}", "w.cpp", k):
            for i in range(5):
                a.lock(m)
                a.store(addr + (i % 4), a.load(addr + (i % 4)) + 1)
                a.unlock(m)
            a.put(q, k)

    ts = [api.spawn(worker, k) for k in range(3)]
    got = [api.get(q) for _ in range(3)]
    for t in ts:
        api.join(t)
    return got


def _run_traced(scheduler_factory):
    recorder = TraceRecorder()
    vm = VM(scheduler=scheduler_factory(), detectors=(recorder,))
    result = vm.run(_workload)
    return result, recorder.events


class TestDeterminism:
    def test_round_trip_same_seed_identical_trace(self):
        from repro.runtime import RoundRobinScheduler

        r1, t1 = _run_traced(RoundRobinScheduler)
        r2, t2 = _run_traced(RoundRobinScheduler)
        assert r1 == r2
        assert t1 == t2

    def test_random_same_seed_identical_trace(self):
        r1, t1 = _run_traced(lambda: RandomScheduler(1234))
        r2, t2 = _run_traced(lambda: RandomScheduler(1234))
        assert r1 == r2
        assert t1 == t2

    def test_different_seeds_usually_differ(self):
        traces = []
        for seed in range(4):
            _, t = _run_traced(lambda: RandomScheduler(seed))
            traces.append(tuple((type(e).__name__, e.tid) for e in t))
        assert len(set(traces)) > 1

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**32), st.floats(0.0, 1.0))
    def test_property_sticky_deterministic(self, seed, prob):
        r1, t1 = _run_traced(lambda: StickyScheduler(seed, prob))
        r2, t2 = _run_traced(lambda: StickyScheduler(seed, prob))
        assert r1 == r2
        assert t1 == t2


class TestSerialisability:
    def test_exactly_one_guest_thread_at_a_time(self):
        """The core Valgrind property: guest execution is serialised.

        Each worker enters a host-level critical section *between* two
        traps (no API call inside) and sleeps, giving any concurrently
        running carrier ample real time to overlap.  Serialised guests
        never observe more than one thread inside.
        """
        import time

        active = []
        peak = []
        gate = threading.Lock()

        def prog(api):
            def worker(a):
                for _ in range(5):
                    with gate:
                        active.append(1)
                    time.sleep(0.001)  # real concurrency would overlap here
                    with gate:
                        peak.append(len(active))
                        active.pop()
                    a.yield_()

            ts = [api.spawn(worker) for _ in range(4)]
            for t in ts:
                api.join(t)

        VM().run(prog)
        assert max(peak) == 1

    def test_event_steps_strictly_increase(self):
        recorder = TraceRecorder()
        vm = VM(detectors=(recorder,))
        vm.run(_workload)
        steps = [e.step for e in recorder.events]
        assert steps == sorted(steps)
        assert len(set(steps)) == len(steps)

    def test_scheduler_decision_log_replayable(self):
        """Replaying the recorded decisions reproduces the trace exactly."""
        from repro.runtime.scheduler import FixedOrderScheduler

        sched = RandomScheduler(77)
        rec1 = TraceRecorder()
        vm1 = VM(scheduler=sched, detectors=(rec1,))
        vm1.run(_workload)
        decisions = sched.record()

        rec2 = TraceRecorder()
        vm2 = VM(scheduler=FixedOrderScheduler(decisions), detectors=(rec2,))
        vm2.run(_workload)
        assert rec1.events == rec2.events
