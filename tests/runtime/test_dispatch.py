"""The dispatch-table event bus (fast-path layer 3).

``VM.emit`` routes each event by exact type through a per-type handler
tuple built lazily from every hook's ``handler_for``.  These tests pin
the ABI down:

* ``EventDispatcher`` subclasses register methods with ``@handles`` and
  expose them through ``handler_for`` / the legacy ``handle``;
* the VM never calls a detector for an event type it did not subscribe
  to, while legacy hooks (only ``handle``) still see everything;
* ``combine_handlers`` composes optional handlers for composite
  detectors (hybrid, racetrack, atomizer);
* ExeContext-style interning gives every emitted event a canonical
  (identity-shared) call stack.
"""

from __future__ import annotations

from repro.detectors import LockGraphDetector
from repro.detectors.dispatch import EventDispatcher, combine_handlers, handles
from repro.runtime import VM, RoundRobinScheduler
from repro.runtime.events import (
    Frame,
    LockAcquire,
    LockRelease,
    MemoryAccess,
    ThreadCreate,
    intern_frame,
    intern_stack,
)


def _tiny_workload(api):
    """Two threads bumping a shared counter under a lock."""
    cell = api.malloc(1, tag="cell")
    api.store(cell, 0)
    m = api.mutex()

    def worker(a):
        for _ in range(3):
            a.lock(m)
            a.store(cell, a.load(cell) + 1)
            a.unlock(m)

    threads = [api.spawn(worker) for _ in range(2)]
    for t in threads:
        api.join(t)
    return api.load(cell)


class _LockCounter(EventDispatcher):
    """Subscribes to lock events only."""

    def __init__(self):
        self.seen: list[type] = []

    @handles(LockAcquire, LockRelease)
    def _on_lock(self, event, vm=None):
        self.seen.append(event.__class__)


class _LegacyHook:
    """Pre-dispatch ABI: a bare ``handle`` that sees every event."""

    def __init__(self):
        self.count = 0

    def handle(self, event, vm):
        self.count += 1


class TestEventDispatcher:
    def test_handles_registers_and_handler_for_resolves(self):
        det = _LockCounter()
        assert det.handler_for(LockAcquire) is not None
        assert det.handler_for(LockRelease) is not None
        assert det.handler_for(MemoryAccess) is None
        assert det.handler_for(ThreadCreate) is None

    def test_legacy_handle_routes_through_the_table(self):
        det = _LockCounter()
        det.handle(LockAcquire(step=1, tid=0, lock_id=1), None)
        det.handle(MemoryAccess(step=2, tid=0, addr=4), None)  # unsubscribed: no-op
        assert det.seen == [LockAcquire]

    def test_subclass_inherits_and_can_extend_the_table(self):
        class Extended(_LockCounter):
            @handles(MemoryAccess)
            def _on_access(self, event, vm=None):
                self.seen.append(event.__class__)

        det = Extended()
        assert det.handler_for(MemoryAccess) is not None
        # The base class table is untouched by the subclass.
        assert _LockCounter().handler_for(MemoryAccess) is None

    def test_combine_handlers(self):
        order = []
        one = lambda e, vm: order.append("one")  # noqa: E731
        two = lambda e, vm: order.append("two")  # noqa: E731
        assert combine_handlers() is None
        assert combine_handlers(None, None) is None
        assert combine_handlers(None, one) is one
        fan = combine_handlers(one, None, two)
        fan(None, None)
        assert order == ["one", "two"]


class TestVMRouting:
    def test_uninterested_detectors_are_skipped(self):
        det = _LockCounter()
        vm = VM(scheduler=RoundRobinScheduler(), detectors=(det,))
        vm.run(_tiny_workload)
        # Lock traffic was seen...
        n_locks = vm.stats.events["LockAcquire"] + vm.stats.events["LockRelease"]
        assert len(det.seen) == n_locks > 0
        # ...and nothing else ever reached the detector.
        assert set(det.seen) == {LockAcquire, LockRelease}
        # The route cache holds an *empty* tuple for unsubscribed types:
        # later MemoryAccess events cost one dict hit and no calls.
        assert vm._dispatch[MemoryAccess] == ()

    def test_legacy_hooks_see_every_event(self):
        legacy = _LegacyHook()
        vm = VM(scheduler=RoundRobinScheduler(), detectors=(legacy,))
        vm.run(_tiny_workload)
        assert legacy.count == vm.stats.total_events > 0

    def test_stock_detector_routes_only_its_events(self):
        det = LockGraphDetector()
        vm = VM(scheduler=RoundRobinScheduler(), detectors=(det,))
        vm.run(_tiny_workload)
        # The lock-graph detector never subscribed to memory traffic.
        assert vm._dispatch[MemoryAccess] == ()
        assert len(vm._dispatch[LockAcquire]) == 1


class TestStackInterning:
    def test_intern_frame_and_stack_are_idempotent_identities(self):
        f1 = intern_frame(Frame("mod.fn", "mod.py", 12))
        f2 = intern_frame(Frame("mod.fn", "mod.py", 12))
        assert f1 is f2
        s1 = intern_stack((Frame("mod.fn", "mod.py", 12), Frame("x", "y.py", 1)))
        s2 = intern_stack((Frame("mod.fn", "mod.py", 12), Frame("x", "y.py", 1)))
        assert s1 is s2
        assert s1[0] is f1
        assert intern_stack(s1) is s1  # already-canonical fast path

    def test_emitted_events_carry_interned_stacks(self):
        class Recorder:
            def __init__(self):
                self.stacks = []

            def handle(self, event, vm):
                self.stacks.append(event.stack)

        rec = Recorder()
        vm = VM(scheduler=RoundRobinScheduler(), detectors=(rec,))
        vm.run(_tiny_workload)
        assert rec.stacks
        for stack in rec.stacks:
            assert intern_stack(stack) is stack
        # Repeated events from the same call site share one tuple object.
        by_value = {}
        for stack in rec.stacks:
            assert by_value.setdefault(stack, stack) is stack
        assert len(by_value) < len(rec.stacks)
