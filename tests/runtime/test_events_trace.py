"""Tests for event serialisation and trace record/replay."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.runtime.events import (
    AccessKind,
    ClientRequest,
    Frame,
    LockAcquire,
    LockMode,
    MemoryAccess,
    QueuePut,
    ThreadCreate,
    event_from_dict,
)
from repro.runtime.trace import TraceRecorder, load_trace, replay
from tests.conftest import record_trace, run_program


class TestEventModel:
    def test_site_is_innermost_frame(self):
        stack = (Frame("inner", "a.cpp", 1), Frame("outer", "a.cpp", 2))
        e = MemoryAccess(0, 0, stack=stack, addr=1)
        assert e.site.function == "inner"

    def test_site_none_for_empty_stack(self):
        e = MemoryAccess(0, 0, addr=1)
        assert e.site is None

    def test_is_write(self):
        r = MemoryAccess(0, 0, addr=1, kind=AccessKind.READ)
        w = MemoryAccess(0, 0, addr=1, kind=AccessKind.WRITE)
        assert not r.is_write
        assert w.is_write

    def test_frame_str(self):
        assert str(Frame("f", "x.cpp", 3)) == "f (x.cpp:3)"

    def test_events_are_immutable(self):
        import dataclasses

        import pytest

        e = MemoryAccess(0, 0, addr=1)
        with pytest.raises(dataclasses.FrozenInstanceError):
            e.addr = 2  # type: ignore[misc]


class TestSerialisation:
    def test_roundtrip_memory_access(self):
        e = MemoryAccess(
            5,
            2,
            stack=(Frame("f", "x.cpp", 3),),
            addr=0x1000,
            kind=AccessKind.WRITE,
            bus_locked=True,
            block_id=7,
        )
        assert event_from_dict(e.to_dict()) == e

    def test_roundtrip_lock_acquire(self):
        e = LockAcquire(1, 0, lock_id=3, mode=LockMode.READ, contended=True)
        assert event_from_dict(e.to_dict()) == e

    def test_roundtrip_client_request(self):
        e = ClientRequest(9, 1, request="hg_destruct", addr=64, size=4)
        assert event_from_dict(e.to_dict()) == e

    def test_roundtrip_thread_create(self):
        e = ThreadCreate(2, 0, child_tid=1)
        assert event_from_dict(e.to_dict()) == e

    def test_roundtrip_queue_put(self):
        e = QueuePut(3, 1, queue_id=0, msg_id=5)
        assert event_from_dict(e.to_dict()) == e

    def test_unknown_type_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="unknown event"):
            event_from_dict({"type": "Bogus"})


@given(
    st.integers(0, 10**6),
    st.integers(0, 100),
    st.integers(0, 2**20),
    st.sampled_from(list(AccessKind)),
    st.booleans(),
    st.lists(
        st.tuples(st.text(max_size=8), st.text(max_size=8), st.integers(0, 999)),
        max_size=4,
    ),
)
def test_property_roundtrip(step, tid, addr, kind, locked, frames):
    stack = tuple(Frame(f, fi, ln) for f, fi, ln in frames)
    e = MemoryAccess(step, tid, stack=stack, addr=addr, kind=kind, bus_locked=locked)
    assert event_from_dict(e.to_dict()) == e


def _sample_program(api):
    addr = api.malloc(2, tag="x")
    api.store(addr, 0)
    m = api.mutex()

    def worker(a):
        a.lock(m)
        a.store(addr, a.load(addr) + 1)
        a.unlock(m)

    t = api.spawn(worker)
    api.lock(m)
    api.store(addr, api.load(addr) + 1)
    api.unlock(m)
    api.join(t)


class TestTraceRecorder:
    def test_records_every_event(self):
        events, vm = record_trace(_sample_program)
        assert len(events) == vm.stats.total_events

    def test_file_spill_and_reload(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path) as recorder:
            run_program(_sample_program, detectors=(recorder,))
        loaded = load_trace(path)
        assert list(loaded) == recorder.events

    def test_estimated_bytes_scales(self):
        recorder = TraceRecorder()
        run_program(_sample_program, detectors=(recorder,))
        assert recorder.estimated_bytes > len(recorder) > 0

    def test_empty_recorder(self):
        recorder = TraceRecorder()
        assert len(recorder) == 0
        assert recorder.estimated_bytes == 0


class TestReplay:
    def test_replay_feeds_all_events(self):
        events, _ = record_trace(_sample_program)

        class Counter:
            n = 0

            def handle(self, event, vm):
                self.n += 1

        counter = Counter()
        replay(events, counter)
        assert counter.n == len(events)

    def test_replay_matches_online_for_stateless_count(self):
        """A detector sees the same stream online and offline."""

        class Collector:
            def __init__(self):
                self.kinds = []

            def handle(self, event, vm):
                self.kinds.append(type(event).__name__)

        online = Collector()
        recorder = TraceRecorder()
        run_program(_sample_program, detectors=(online, recorder))
        offline = Collector()
        replay(recorder.events, offline)
        assert online.kinds == offline.kinds
