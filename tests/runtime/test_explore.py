"""Tests for bounded systematic schedule exploration."""

from __future__ import annotations

from repro.detectors import HelgrindConfig, HelgrindDetector
from repro.runtime.explore import explore


def tiny_race(api):
    addr = api.malloc(1)
    api.store(addr, 0)

    def w(a):
        a.store(addr, a.load(addr) + 1)

    t1, t2 = api.spawn(w), api.spawn(w)
    api.join(t1)
    api.join(t2)
    return api.load(addr)


class TestExploration:
    def test_sequential_program_has_one_schedule(self):
        def prog(api):
            addr = api.malloc(1)
            api.store(addr, 41)
            return api.load(addr) + 1

        result = explore(prog)
        assert result.schedules_run == 1
        assert result.exhausted
        assert result.distinct_results() == {42}

    def test_race_produces_multiple_results(self):
        """Exhaustive exploration PROVES the lost-update corruption:
        some schedule yields 2, some schedule yields 1."""
        result = explore(tiny_race, max_schedules=1024)
        assert result.exhausted
        assert result.distinct_results() == {1, 2}

    def test_lockset_detects_under_every_schedule(self):
        """The unlocked-unlocked race has no hiding schedule."""
        result = explore(
            tiny_race,
            detector_factories=(lambda: HelgrindDetector(HelgrindConfig.hwlc()),),
            max_schedules=1024,
        )
        assert result.exhausted
        assert result.races_found == result.schedules_run

    def test_delayed_init_false_negative_is_schedule_dependent(self):
        """The §4.3 claim, verified by enumeration instead of sampling:
        the unlocked/locked writer race is reported under some schedules
        and provably missed under others."""

        def prog(api):
            addr = api.malloc(1)
            api.store(addr, 0)
            m = api.mutex()

            def unlocked(a):
                a.store(addr, 1)

            def locked(a):
                a.lock(m)
                a.store(addr, 2)
                a.unlock(m)

            t1, t2 = api.spawn(unlocked), api.spawn(locked)
            api.join(t1)
            api.join(t2)

        result = explore(
            prog,
            detector_factories=(lambda: HelgrindDetector(HelgrindConfig.hwlc()),),
            max_schedules=2048,
        )
        assert result.exhausted
        assert 0 < result.races_found < result.schedules_run

    def test_deadlock_discovered_by_enumeration(self):
        def prog(api):
            m1, m2 = api.mutex(), api.mutex()

            def w1(a):
                a.lock(m1)
                a.lock(m2)
                a.unlock(m2)
                a.unlock(m1)

            def w2(a):
                a.lock(m2)
                a.lock(m1)
                a.unlock(m1)
                a.unlock(m2)

            t1, t2 = api.spawn(w1), api.spawn(w2)
            api.join(t1)
            api.join(t2)

        result = explore(prog, max_schedules=10_000)
        assert result.exhausted
        assert result.deadlocks_found > 0
        assert len(result.with_status("ok")) > 0  # and some runs survive

    def test_torn_record_found(self):
        """§2.1's dob/age example: enumeration finds the torn read."""

        def prog(api):
            dob = api.malloc(1)
            age = api.malloc(1)
            api.store(dob, 1970)
            api.store(age, 37)
            m = api.mutex()
            seen = []

            def writer(a):
                a.lock(m)
                a.store(dob, 1980)
                a.unlock(m)
                a.lock(m)
                a.store(age, 27)
                a.unlock(m)

            def reader(a):
                a.lock(m)
                seen.append((a.load(dob), a.load(age)))
                a.unlock(m)

            t1, t2 = api.spawn(writer), api.spawn(reader)
            api.join(t1)
            api.join(t2)
            return seen[0]

        # ~20k schedules exhaustively is ~13s; a bounded sweep of a few
        # thousand already surfaces both outcomes deterministically.
        result = explore(prog, max_schedules=4000)
        assert (1980, 37) in result.distinct_results()  # the torn record
        assert (1980, 27) in result.distinct_results()  # and the clean one

    def test_budget_bounding(self):
        result = explore(tiny_race, max_schedules=3)
        assert result.schedules_run == 3
        assert not result.exhausted

    def test_outcomes_are_reproducible(self):
        """Re-running any explored prefix reproduces its result."""
        from repro.runtime.explore import _ExploringScheduler
        from repro.runtime.vm import VM

        result = explore(tiny_race, max_schedules=64)
        sample = [o for o in result.outcomes if o.status == "ok"][:5]
        for outcome in sample:
            vm = VM(scheduler=_ExploringScheduler(list(outcome.choices)))
            assert vm.run(tiny_race) == outcome.result

    def test_format(self):
        result = explore(tiny_race, max_schedules=16)
        text = result.format()
        assert "explored" in text and "schedules" in text
