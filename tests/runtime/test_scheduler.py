"""Tests for the seeded schedulers."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.runtime.scheduler import (
    FixedOrderScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    StickyScheduler,
)
from repro.runtime.thread import SimThread


def _threads(n):
    return [SimThread(tid=i, name=f"t{i}", target=None, args=(), parent_tid=None) for i in range(n)]


class TestRoundRobin:
    def test_cycles_through_all(self):
        sched = RoundRobinScheduler()
        ts = _threads(3)
        picks = [sched.pick(ts, None).tid for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_missing_tids(self):
        sched = RoundRobinScheduler()
        ts = _threads(4)
        sched.pick(ts, None)  # picks 0
        subset = [ts[1], ts[3]]
        assert sched.pick(subset, None).tid == 1
        assert sched.pick(subset, None).tid == 3
        assert sched.pick(subset, None).tid == 1  # wraps

    def test_records_decisions(self):
        sched = RoundRobinScheduler()
        ts = _threads(2)
        sched.pick(ts, None)
        sched.pick(ts, None)
        assert sched.record() == [0, 1]


class TestRandom:
    def test_deterministic_given_seed(self):
        ts = _threads(5)
        a = [RandomScheduler(9).pick(ts, None).tid for _ in range(1)]
        picks1 = []
        picks2 = []
        s1, s2 = RandomScheduler(9), RandomScheduler(9)
        for _ in range(50):
            picks1.append(s1.pick(ts, None).tid)
            picks2.append(s2.pick(ts, None).tid)
        assert picks1 == picks2

    def test_different_seeds_diverge(self):
        ts = _threads(5)
        s1, s2 = RandomScheduler(1), RandomScheduler(2)
        p1 = [s1.pick(ts, None).tid for _ in range(50)]
        p2 = [s2.pick(ts, None).tid for _ in range(50)]
        assert p1 != p2

    def test_eventually_picks_everyone(self):
        ts = _threads(4)
        sched = RandomScheduler(0)
        seen = {sched.pick(ts, None).tid for _ in range(200)}
        assert seen == {0, 1, 2, 3}


class TestSticky:
    def test_zero_switch_prob_never_leaves_current(self):
        ts = _threads(3)
        sched = StickyScheduler(seed=0, switch_prob=0.0)
        current = ts[1]
        for _ in range(50):
            assert sched.pick(ts, current) is current

    def test_switches_when_current_not_runnable(self):
        ts = _threads(3)
        sched = StickyScheduler(seed=0, switch_prob=0.0)
        gone = SimThread(tid=99, name="gone", target=None, args=(), parent_tid=None)
        pick = sched.pick(ts, gone)
        assert pick in ts

    def test_switch_prob_one_is_uniform(self):
        ts = _threads(3)
        sched = StickyScheduler(seed=7, switch_prob=1.0)
        seen = {sched.pick(ts, ts[0]).tid for _ in range(100)}
        assert seen == {0, 1, 2}

    def test_invalid_prob_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            StickyScheduler(switch_prob=1.5)

    def test_deterministic_given_seed(self):
        ts = _threads(4)
        s1 = StickyScheduler(seed=5, switch_prob=0.3)
        s2 = StickyScheduler(seed=5, switch_prob=0.3)
        cur = None
        p1, p2 = [], []
        for _ in range(100):
            a = s1.pick(ts, cur)
            b = s2.pick(ts, cur)
            p1.append(a.tid)
            p2.append(b.tid)
            cur = a
        assert p1 == p2


class TestFixedOrder:
    def test_replays_script(self):
        ts = _threads(3)
        sched = FixedOrderScheduler([2, 0, 1])
        assert [sched.pick(ts, None).tid for _ in range(3)] == [2, 0, 1]
        assert sched.exhausted

    def test_falls_back_without_consuming(self):
        ts = _threads(3)
        sched = FixedOrderScheduler([2])
        only_01 = ts[:2]
        assert sched.pick(only_01, None).tid == 0  # 2 not runnable: fallback
        assert not sched.exhausted
        assert sched.pick(ts, None).tid == 2  # now consumed
        assert sched.exhausted

    def test_exhausted_script_picks_lowest(self):
        ts = _threads(3)
        sched = FixedOrderScheduler([])
        assert sched.pick(ts, None).tid == 0


@given(st.integers(0, 2**32), st.integers(1, 8))
def test_property_schedulers_always_pick_runnable(seed, n):
    """Every policy returns a member of the runnable set it was given."""
    ts = _threads(n)
    for sched in (
        RoundRobinScheduler(),
        RandomScheduler(seed),
        StickyScheduler(seed, 0.5),
        FixedOrderScheduler([seed % n]),
    ):
        for _ in range(10):
            assert sched.pick(ts, None) in ts
