"""StreamDecoder: incremental RPTR v1 decoding and byte accounting.

The streaming analysis service feeds the decoder arbitrary network
chunks — record boundaries land anywhere.  These tests pin the three
properties the service relies on:

* **chunking is invisible** — any partition of a trace's bytes (one
  feed, random chunks, near-byte-at-a-time) decodes exactly the same
  events and tables as the batch reader;
* **byte accounting is exact** — for every tier-1 case T1–T8, the
  writer's ``bytes_written``, the file size, and the decoder's
  ``bytes_consumed`` after a full feed are all equal, and nothing is
  left pending;
* **mid-stream pickling works** — a decoder pickled between chunks
  resumes on the remaining bytes with identical totals (the service's
  checkpoint/resume path).
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.runtime import codec
from repro.runtime.codec import StreamDecoder, trace_stats

CASE_IDS = [f"T{i}" for i in range(1, 9)]


@pytest.fixture(scope="module")
def recorded_traces(tmp_path_factory):
    """Record every tier-1 case once: ``{case_id: (path, recorder_stats)}``."""
    from repro.experiments.harness import run_proxy_case
    from repro.runtime.trace import TraceRecorder
    from repro.sip.workload import evaluation_cases

    root = tmp_path_factory.mktemp("traces")
    cases = {c.case_id: c for c in evaluation_cases()}
    out = {}
    for case_id in CASE_IDS:
        path = root / f"{case_id}.rptr"
        with TraceRecorder(path, format="binary") as recorder:
            run_proxy_case(cases[case_id], "hwlc+dr", seed=42,
                           extra_hooks=(recorder,))
        out[case_id] = (path, recorder.bytes_written, len(recorder))
    return out


@pytest.mark.parametrize("case_id", CASE_IDS)
def test_bytes_accounting_matches_writer(recorded_traces, case_id):
    """writer.bytes_written == file size == decoder.bytes_consumed."""
    path, bytes_written, events_written = recorded_traces[case_id]
    assert path.stat().st_size == bytes_written

    stats = trace_stats(path)
    assert stats["file_bytes"] == bytes_written
    assert stats["events"] == events_written

    decoder = StreamDecoder()
    decoder.feed(path.read_bytes())
    assert decoder.bytes_fed == bytes_written
    assert decoder.bytes_consumed == bytes_written
    assert decoder.pending_bytes == 0
    assert decoder.events_decoded == events_written


def test_random_chunk_feed_equals_batch(recorded_traces):
    data = recorded_traces["T1"][0].read_bytes()
    reference = StreamDecoder()
    reference.feed(data)

    rng = random.Random(7)
    decoder = StreamDecoder()
    pos = 0
    while pos < len(data):
        n = rng.randint(1, 4096)
        decoder.feed(data[pos:pos + n])
        pos += n
    assert decoder.events_decoded == reference.events_decoded
    assert decoder.blocks_decoded == reference.blocks_decoded
    assert decoder.bytes_consumed == len(data)
    assert decoder.pending_bytes == 0
    assert decoder.table_sizes() == reference.table_sizes()


def test_tiny_chunks_tolerate_any_record_boundary(recorded_traces):
    """Prime-sized chunks guarantee every record straddles a feed."""
    data = recorded_traces["T2"][0].read_bytes()
    stats = trace_stats(recorded_traces["T2"][0])
    decoder = StreamDecoder()
    for pos in range(0, len(data), 13):
        decoder.feed(data[pos:pos + 13])
    assert decoder.events_decoded == stats["events"]
    assert decoder.bytes_consumed == len(data)
    assert decoder.pending_bytes == 0


def test_partial_magic_and_header_stay_pending():
    decoder = StreamDecoder()
    decoder.feed(codec.MAGIC[:3])
    assert decoder.events_decoded == 0
    assert decoder.bytes_consumed == 0
    decoder.feed(codec.MAGIC[3:])
    assert decoder.bytes_consumed == len(codec.MAGIC)
    assert decoder.pending_bytes == 0


def test_bad_magic_raises():
    decoder = StreamDecoder()
    with pytest.raises(ValueError):
        decoder.feed(b"NOPE\x01xxxx")


def test_mid_stream_pickle_resumes_identically(recorded_traces):
    data = recorded_traces["T3"][0].read_bytes()
    whole = StreamDecoder()
    whole.feed(data)

    first = StreamDecoder()
    cut = len(data) // 2 + 3  # deliberately mid-record
    first.feed(data[:cut])
    resumed = pickle.loads(pickle.dumps(first))
    assert resumed.bytes_fed == first.bytes_fed
    resumed.feed(data[cut:])

    assert resumed.events_decoded == whole.events_decoded
    assert resumed.blocks_decoded == whole.blocks_decoded
    assert resumed.bytes_consumed == whole.bytes_consumed == len(data)
    assert resumed.table_sizes() == whole.table_sizes()


def test_bytes_fed_is_the_resume_offset(recorded_traces):
    """``bytes_fed`` (consumed + pending) is where a resuming client
    must seek its source — feeding exactly from there loses nothing."""
    data = recorded_traces["T1"][0].read_bytes()
    stats = trace_stats(recorded_traces["T1"][0])
    decoder = StreamDecoder()
    cut = 10_000
    decoder.feed(data[:cut])
    assert decoder.bytes_fed == cut
    assert decoder.bytes_fed == decoder.bytes_consumed + decoder.pending_bytes
    decoder.feed(data[decoder.bytes_fed:])
    assert decoder.events_decoded == stats["events"]
