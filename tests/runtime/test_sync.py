"""Tests for the simulated synchronisation primitives."""

from __future__ import annotations

import pytest

from repro.errors import DeadlockError, GuestFault
from repro.runtime import RandomScheduler
from repro.runtime.events import LockAcquire, LockMode, LockRelease
from tests.conftest import record_trace, run_program


class TestMutex:
    def test_mutual_exclusion_protects_counter(self):
        def prog(api):
            addr = api.malloc(1)
            api.store(addr, 0)
            m = api.mutex()

            def worker(a):
                for _ in range(25):
                    a.lock(m)
                    a.store(addr, a.load(addr) + 1)
                    a.unlock(m)

            ts = [api.spawn(worker) for _ in range(4)]
            for t in ts:
                api.join(t)
            return api.load(addr)

        for seed in range(3):
            result, _ = run_program(prog, scheduler=RandomScheduler(seed))
            assert result == 100

    def test_lock_events_emitted(self):
        def prog(api):
            m = api.mutex("guard")
            api.lock(m)
            api.unlock(m)

        events, _ = record_trace(prog)
        acq = [e for e in events if isinstance(e, LockAcquire)]
        rel = [e for e in events if isinstance(e, LockRelease)]
        assert len(acq) == 1 and len(rel) == 1
        assert acq[0].lock_id == rel[0].lock_id
        assert acq[0].mode is LockMode.EXCLUSIVE

    def test_relock_faults(self):
        def prog(api):
            m = api.mutex()
            api.lock(m)
            api.lock(m)

        with pytest.raises(GuestFault, match="relock"):
            run_program(prog)

    def test_unlock_unheld_faults(self):
        def prog(api):
            api.unlock(api.mutex())

        with pytest.raises(GuestFault, match="unlock"):
            run_program(prog)

    def test_unlock_by_non_owner_faults(self):
        def prog(api):
            m = api.mutex()

            def child(a):
                a.unlock(m)

            api.lock(m)
            t = api.spawn(child)
            api.join(t)

        with pytest.raises(GuestFault, match="unlock"):
            run_program(prog)

    def test_trylock(self):
        def prog(api):
            m = api.mutex()
            first = api.trylock(m)
            results = []

            def child(a):
                results.append(a.trylock(m))

            t = api.spawn(child)
            api.join(t)
            api.unlock(m)
            return first, results[0]

        result, _ = run_program(prog)
        assert result == (True, False)

    def test_contended_flag_set_when_waiting(self):
        def prog(api):
            m = api.mutex()

            def holder(a):
                a.lock(m)
                a.sleep(5)
                a.unlock(m)

            t = api.spawn(holder)
            api.yield_()  # let the child take the lock first
            api.lock(m)
            api.unlock(m)
            api.join(t)

        events, _ = record_trace(prog)
        main_acq = [e for e in events if isinstance(e, LockAcquire) and e.tid == 0]
        assert any(e.contended for e in main_acq)


class TestRWLock:
    def test_multiple_readers(self):
        def prog(api):
            rw = api.rwlock()
            addr = api.malloc(1)
            api.store(addr, 7)
            inside = api.malloc(1)
            api.store(inside, 0)
            peaks = []

            def reader(a):
                a.rdlock(rw)
                a.store(inside, a.load(inside) + 1)
                peaks.append(a.load(inside))
                a.sleep(3)
                a.store(inside, a.load(inside) - 1)
                a.rw_unlock(rw)

            ts = [api.spawn(reader) for _ in range(3)]
            for t in ts:
                api.join(t)
            return max(peaks)

        # At least two readers overlap under round-robin.
        result, _ = run_program(prog)
        assert result >= 2

    def test_writer_excludes_readers(self):
        def prog(api):
            rw = api.rwlock()
            addr = api.malloc(1)
            api.store(addr, 0)

            def writer(a):
                for _ in range(10):
                    a.wrlock(rw)
                    v = a.load(addr)
                    a.yield_()
                    a.store(addr, v + 1)
                    a.rw_unlock(rw)

            def reader(a):
                for _ in range(10):
                    a.rdlock(rw)
                    a.load(addr)
                    a.rw_unlock(rw)

            ts = [api.spawn(writer), api.spawn(writer), api.spawn(reader)]
            for t in ts:
                api.join(t)
            return api.load(addr)

        result, _ = run_program(prog, scheduler=RandomScheduler(3))
        assert result == 20  # writers never interleave mid-update

    def test_rw_modes_in_events(self):
        def prog(api):
            rw = api.rwlock()
            api.rdlock(rw)
            api.rw_unlock(rw)
            api.wrlock(rw)
            api.rw_unlock(rw)

        events, _ = record_trace(prog)
        modes = [e.mode for e in events if isinstance(e, (LockAcquire, LockRelease))]
        assert modes == [LockMode.READ, LockMode.READ, LockMode.WRITE, LockMode.WRITE]

    def test_reacquire_faults(self):
        def prog(api):
            rw = api.rwlock()
            api.rdlock(rw)
            api.wrlock(rw)

        with pytest.raises(GuestFault, match="re-acquire"):
            run_program(prog)

    def test_unlock_unheld_faults(self):
        def prog(api):
            api.rw_unlock(api.rwlock())

        with pytest.raises(GuestFault, match="not held"):
            run_program(prog)


class TestCondVar:
    def test_wait_requires_mutex(self):
        def prog(api):
            cv, m = api.condvar(), api.mutex()
            api.cond_wait(cv, m)  # not holding m

        with pytest.raises(GuestFault, match="without holding"):
            run_program(prog)

    def test_signal_wakes_one(self):
        def prog(api):
            cv, m = api.condvar(), api.mutex()
            flag = api.malloc(1)
            api.store(flag, 0)
            woken = []

            def waiter(a, label):
                a.lock(m)
                while a.load(flag) == 0:
                    a.cond_wait(cv, m)
                woken.append(label)
                a.store(flag, 0)  # consume
                a.unlock(m)

            t1 = api.spawn(waiter, "a")
            t2 = api.spawn(waiter, "b")
            api.sleep(10)
            api.lock(m)
            api.store(flag, 1)
            api.cond_signal(cv)
            api.unlock(m)
            api.sleep(10)
            api.lock(m)
            api.store(flag, 1)
            api.cond_signal(cv)
            api.unlock(m)
            api.join(t1)
            api.join(t2)
            return woken

        result, _ = run_program(prog)
        assert sorted(result) == ["a", "b"]

    def test_broadcast_wakes_all(self):
        def prog(api):
            cv, m = api.condvar(), api.mutex()
            gate = api.malloc(1)
            api.store(gate, 0)
            done = []

            def waiter(a, i):
                a.lock(m)
                while a.load(gate) == 0:
                    a.cond_wait(cv, m)
                a.unlock(m)
                done.append(i)

            ts = [api.spawn(waiter, i) for i in range(4)]
            api.sleep(10)
            api.lock(m)
            api.store(gate, 1)
            api.cond_broadcast(cv)
            api.unlock(m)
            for t in ts:
                api.join(t)
            return sorted(done)

        result, _ = run_program(prog)
        assert result == [0, 1, 2, 3]

    def test_signal_without_waiters_is_lost(self):
        def prog(api):
            cv, m = api.condvar(), api.mutex()
            api.cond_signal(cv)  # lost
            api.lock(m)
            api.cond_wait(cv, m)  # blocks forever

        with pytest.raises(DeadlockError):
            run_program(prog)


class TestSemaphore:
    def test_counting(self):
        def prog(api):
            sem = api.semaphore(2)
            order = []

            def worker(a, i):
                a.sem_wait(sem)
                order.append(("in", i))
                a.sleep(2)
                order.append(("out", i))
                a.sem_post(sem)

            ts = [api.spawn(worker, i) for i in range(4)]
            for t in ts:
                api.join(t)
            # Never more than 2 inside simultaneously.
            inside = 0
            peak = 0
            for what, _ in order:
                inside += 1 if what == "in" else -1
                peak = max(peak, inside)
            return peak

        result, _ = run_program(prog)
        assert result == 2

    def test_wait_blocks_until_post(self):
        def prog(api):
            sem = api.semaphore(0)
            log = []

            def waiter(a):
                a.sem_wait(sem)
                log.append("woke")

            t = api.spawn(waiter)
            api.sleep(5)
            log.append("posting")
            api.sem_post(sem)
            api.join(t)
            return log

        result, _ = run_program(prog)
        assert result == ["posting", "woke"]

    def test_negative_initial_rejected(self):
        def prog(api):
            api.semaphore(-1)

        with pytest.raises(ValueError):
            run_program(prog)


class TestBarrier:
    def test_all_threads_rendezvous(self):
        def prog(api):
            bar = api.barrier(3)
            log = []

            def worker(a, i):
                log.append(("before", i))
                a.barrier_wait(bar)
                log.append(("after", i))

            ts = [api.spawn(worker, i) for i in range(3)]
            for t in ts:
                api.join(t)
            befores = [e for e in log if e[0] == "before"]
            afters = [e for e in log if e[0] == "after"]
            # All 'before' entries precede all 'after' entries.
            return log.index(afters[0]) > max(log.index(b) for b in befores)

        result, _ = run_program(prog)
        assert result is True

    def test_exactly_one_releaser(self):
        def prog(api):
            bar = api.barrier(3)
            flags = []

            def worker(a):
                flags.append(a.barrier_wait(bar))

            ts = [api.spawn(worker) for _ in range(3)]
            for t in ts:
                api.join(t)
            return flags

        result, _ = run_program(prog)
        assert sorted(result) == [False, False, True]

    def test_barrier_is_cyclic(self):
        def prog(api):
            bar = api.barrier(2)
            counter = api.malloc(1)
            api.store(counter, 0)

            def worker(a):
                for _ in range(3):
                    a.barrier_wait(bar)

            t = api.spawn(worker)
            for _ in range(3):
                api.barrier_wait(bar)
            api.join(t)
            return True

        result, _ = run_program(prog)
        assert result

    def test_missing_party_deadlocks(self):
        def prog(api):
            bar = api.barrier(2)
            api.barrier_wait(bar)

        with pytest.raises(DeadlockError):
            run_program(prog)


class TestQueue:
    def test_fifo_ordering(self):
        def prog(api):
            q = api.queue()
            got = []

            def consumer(a):
                for _ in range(5):
                    got.append(a.get(q))

            t = api.spawn(consumer)
            for i in range(5):
                api.put(q, i)
            api.join(t)
            return got

        result, _ = run_program(prog)
        assert result == [0, 1, 2, 3, 4]

    def test_bounded_put_blocks(self):
        def prog(api):
            q = api.queue(maxsize=1)
            log = []

            def producer(a):
                for i in range(3):
                    a.put(q, i)
                    log.append(("put", i))

            t = api.spawn(producer)
            api.sleep(20)  # producer must be stuck after one item
            stuck_after = list(log)
            while len(log) < 3 or True:
                item = api.get(q)
                log.append(("got", item))
                if item == 2:
                    break
            api.join(t)
            return stuck_after

        result, _ = run_program(prog)
        assert result == [("put", 0)]

    def test_msg_ids_pair_put_and_get(self):
        from repro.runtime.events import QueueGet, QueuePut

        def prog(api):
            q = api.queue()

            def consumer(a):
                a.get(q)
                a.get(q)

            t = api.spawn(consumer)
            api.put(q, "x")
            api.put(q, "y")
            api.join(t)

        events, _ = record_trace(prog)
        puts = {e.msg_id for e in events if isinstance(e, QueuePut)}
        gets = {e.msg_id for e in events if isinstance(e, QueueGet)}
        assert puts == gets == {0, 1}

    def test_multiple_consumers_each_message_once(self):
        def prog(api):
            q = api.queue()
            got = []

            def consumer(a):
                while True:
                    item = a.get(q)
                    if item is None:
                        break
                    got.append(item)

            ts = [api.spawn(consumer) for _ in range(3)]
            for i in range(12):
                api.put(q, i)
            for _ in ts:
                api.put(q, None)
            for t in ts:
                api.join(t)
            return sorted(got)

        result, _ = run_program(prog, scheduler=RandomScheduler(11))
        assert result == list(range(12))
