"""Binary trace codec (RPTR v1): round-trip and replay properties.

The codec (:mod:`repro.runtime.codec`) is the storage tier of the
offline mode — if it drops a bit anywhere, post-mortem analysis
silently diverges from the on-the-fly run.  These tests pin it down
from four sides:

* **every event type round-trips** — a handcrafted instance of each
  of the 16 concrete event classes, with awkward field values (empty
  strings, unicode tags, negative ids), survives
  ``TraceWriter`` → ``events_from_bytes`` exactly;
* **both struct variants of both block flags are exercised** —
  addresses ≥ 2**32 force the *wide* (non-NARROW) row layout and
  non-consecutive steps force the explicit-step (non-SEQ_STEP)
  layout, and the tests assert the writer actually picked the
  expected variant (via the struct object ``read_blocks`` hands back)
  rather than merely that decoding succeeded;
* **property round-trips** — hypothesis-generated mixed-type event
  sequences with random step gaps, page-sized and 64-bit addresses,
  and random stacks come back bit-equal through both the in-memory
  (``events_from_bytes``) and the file (``load_trace``) paths, with
  ``bytes_written`` exactly matching the file size;
* **``replay_blocks`` ≡ event decoding** — the fused flyweight fast
  path (single-handler codegen loops, the n==1 ``unpack_from`` path,
  the multi-handler shared-flyweight path, and undecoded block
  skipping) observes exactly the same field values as materialised
  events, for every subscription shape.
"""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime import codec
from repro.runtime.codec import (
    MAGIC,
    TraceWriter,
    events_from_bytes,
    read_blocks,
    trace_stats,
)
from repro.runtime.codec import _FLAG_NARROW, _FLAG_SEQ_STEP, _ROW_STRUCTS
from repro.runtime.events import (
    EVENT_TYPES,
    AccessKind,
    BarrierWait,
    ClientRequest,
    CondSignal,
    CondWait,
    Frame,
    LockAcquire,
    LockMode,
    LockRelease,
    MemAlloc,
    MemFree,
    MemoryAccess,
    QueueGet,
    QueuePut,
    SemPost,
    SemWait,
    ThreadCreate,
    ThreadFinish,
    ThreadJoin,
    intern_stack,
)
from repro.runtime.trace import load_trace

_STACK = intern_stack(
    (
        Frame("handle_request", "proxy.cc", 42),
        Frame("worker_main", "threadpool.cc", 101),
    )
)


def _encode(events) -> tuple[bytes, TraceWriter]:
    buf = io.BytesIO()
    writer = TraceWriter(buf)
    for event in events:
        writer.write(event)
    writer.close()
    return buf.getvalue(), writer


def _decode(data: bytes) -> list:
    return list(events_from_bytes(data))


# ----------------------------------------------------------------------
# Every event type, once, with awkward field values
# ----------------------------------------------------------------------

#: One instance per concrete event type (order = EVENT_TYPES), chosen to
#: stress the field codecs: a 64-bit address, an empty string, a
#: non-ASCII tag, negative ids, every enum member somewhere.
_ONE_OF_EACH = [
    MemoryAccess(0, 1, (1 << 40) + 7, AccessKind.WRITE, True, -1, stack=_STACK),
    MemAlloc(1, 2, 0x10, 64, 3, "größe", stack=_STACK),
    MemFree(2, 2, 0x10, 64, 3),
    LockAcquire(3, 0, 7, LockMode.READ, True),
    LockRelease(4, 0, 7, LockMode.WRITE),
    ThreadCreate(5, 0, 9, stack=_STACK),
    ThreadFinish(6, 9),
    ThreadJoin(7, 0, 9),
    CondWait(8, 1, 2, 3, "leave"),
    CondSignal(9, 1, 2, True),
    SemPost(10, 1, 5),
    SemWait(11, 2, 5),
    BarrierWait(12, 1, 4, 2, "arrive"),
    QueuePut(13, 1, 6, 17),
    QueueGet(14, 2, 6, 17),
    ClientRequest(15, 1, "", 2**33, 2**32, stack=_STACK),
]

assert tuple(type(e) for e in _ONE_OF_EACH) == EVENT_TYPES


def test_every_event_type_round_trips():
    data, writer = _encode(_ONE_OF_EACH)
    assert writer.events_written == len(EVENT_TYPES)
    assert writer.bytes_written == len(data)
    decoded = _decode(data)
    assert decoded == _ONE_OF_EACH
    # Stacks come back as the canonical interned objects, not copies.
    assert decoded[0].stack is _STACK


def test_empty_trace_is_just_magic():
    data, writer = _encode([])
    assert data == MAGIC
    assert writer.bytes_written == len(MAGIC)
    assert _decode(data) == []


def test_bad_magic_rejected():
    try:
        _decode(b"NOPE" + b"\x00" * 8)
    except ValueError as exc:
        assert "magic" in str(exc)
    else:  # pragma: no cover
        raise AssertionError("bad magic accepted")


# ----------------------------------------------------------------------
# Flag selection: SEQ_STEP and NARROW must actually engage (and
# disengage) — not just "decoding worked"
# ----------------------------------------------------------------------


def _block_flags(data: bytes) -> list[int]:
    """The flags byte of every event block, via the struct identity."""
    out = []
    for type_idx, _stacks, _strings, s, _block, base in read_blocks(data):
        variants = _ROW_STRUCTS[type_idx]
        flags = next(f for f in range(4) if variants[f] is s)
        assert bool(flags & _FLAG_SEQ_STEP) == (base is not None)
        out.append(flags)
    return out


def test_seq_and_narrow_engage_on_friendly_input():
    events = [
        MemoryAccess(step, 1, 0x100 + step, AccessKind.READ, False, 4)
        for step in range(10, 16)  # consecutive steps, u32 addresses
    ]
    data, _ = _encode(events)
    assert _block_flags(data) == [_FLAG_SEQ_STEP | _FLAG_NARROW]
    assert _decode(data) == events


def test_wide_addresses_disable_narrow():
    events = [
        MemoryAccess(step, 1, (1 << 40) + step, AccessKind.READ, False, 4)
        for step in range(3)
    ]
    data, _ = _encode(events)
    assert _block_flags(data) == [_FLAG_SEQ_STEP]
    decoded = _decode(data)
    assert [e.addr for e in decoded] == [(1 << 40) + s for s in range(3)]


def test_gapped_steps_disable_seq():
    events = [
        SemPost(step, 0, 1) for step in (5, 6, 8)  # 6→8 breaks the run
    ]
    data, _ = _encode(events)
    assert _block_flags(data) == [0]
    assert [e.step for e in _decode(data)] == [5, 6, 8]


def test_one_wide_row_widens_the_whole_block():
    # NARROW is per block: a single 64-bit address in the block forces
    # every row onto the wide struct.
    events = [
        ClientRequest(0, 1, "hg_clean", 0x10, 8),
        ClientRequest(1, 1, "hg_clean", 1 << 35, 8),
        ClientRequest(2, 1, "hg_clean", 0x20, 8),
    ]
    data, _ = _encode(events)
    assert _block_flags(data) == [_FLAG_SEQ_STEP]
    assert _decode(data) == events


def test_type_change_splits_blocks():
    events = [SemPost(0, 0, 1), SemWait(1, 0, 1), SemPost(2, 0, 1)]
    data, _ = _encode(events)
    assert len(_block_flags(data)) == 3  # one single-row block each
    assert _decode(data) == events


# ----------------------------------------------------------------------
# Property round-trips: mixed types, random gaps, wide/narrow mix
# ----------------------------------------------------------------------

_FRAMES = st.builds(
    Frame,
    st.sampled_from(["f", "g", "handle", "σ"]),
    st.sampled_from(["a.cc", "b.cc"]),
    st.integers(0, 500),
)
_STACKS = st.lists(_FRAMES, max_size=3).map(tuple).map(intern_stack)
_TIDS = st.integers(0, 7)
#: Addresses from three regimes: small (narrow), just around the u32
#: boundary, and genuinely 64-bit (wide path).
_ADDRS = st.one_of(
    st.integers(0, 0x1000),
    st.integers(0x1_0000_0000 - 2, 0x1_0000_0000 + 2),
    st.integers(1 << 40, (1 << 40) + 0x1000),
)
_STR = st.sampled_from(["", "msg", "hg_destruct", "grüße"])

_EVENT_BODIES = st.one_of(
    st.builds(
        lambda t, a, k, b, blk, s: ("access", t, a, k, b, blk, s),
        _TIDS, _ADDRS, st.sampled_from((AccessKind.READ, AccessKind.WRITE)),
        st.booleans(), st.integers(-1, 40), _STACKS,
    ),
    st.builds(
        lambda t, a, n, blk, tag: ("alloc", t, a, n, blk, tag),
        _TIDS, _ADDRS, st.integers(1, 1 << 36), st.integers(0, 40), _STR,
    ),
    st.builds(
        lambda t, a, n, blk: ("free", t, a, n, blk),
        _TIDS, _ADDRS, st.integers(1, 1 << 36), st.integers(0, 40),
    ),
    st.builds(
        lambda t, l, m, c: ("acquire", t, l, m, c),
        _TIDS, st.integers(0, 9),
        st.sampled_from((LockMode.EXCLUSIVE, LockMode.READ, LockMode.WRITE)),
        st.booleans(),
    ),
    st.builds(
        lambda t, r, a, n: ("request", t, r, a, n),
        _TIDS, _STR, _ADDRS, st.integers(0, 1 << 36),
    ),
    st.builds(lambda t, o: ("join", t, o), _TIDS, _TIDS),
    st.builds(lambda t: ("finish", t), _TIDS),
)

#: (step gap, body) pairs — gap 1 keeps SEQ_STEP eligible, larger gaps
#: break it mid-stream.
_SEQS = st.lists(
    st.tuples(st.integers(1, 3), _EVENT_BODIES), max_size=40
)


def _materialise(seq) -> list:
    events = []
    step = 0
    for gap, body in seq:
        step += gap
        kind = body[0]
        if kind == "access":
            _, t, a, k, b, blk, s = body
            events.append(MemoryAccess(step, t, a, k, b, blk, stack=s))
        elif kind == "alloc":
            _, t, a, n, blk, tag = body
            events.append(MemAlloc(step, t, a, n, blk, tag))
        elif kind == "free":
            _, t, a, n, blk = body
            events.append(MemFree(step, t, a, n, blk))
        elif kind == "acquire":
            _, t, l, m, c = body
            events.append(LockAcquire(step, t, l, m, c))
        elif kind == "request":
            _, t, r, a, n = body
            events.append(ClientRequest(step, t, r, a, n))
        elif kind == "join":
            _, t, o = body
            events.append(ThreadJoin(step, t, o))
        else:
            events.append(ThreadFinish(step, body[1]))
    return events


@given(seq=_SEQS)
@settings(max_examples=120, deadline=None, derandomize=True)
def test_property_round_trip_in_memory(seq):
    events = _materialise(seq)
    data, writer = _encode(events)
    assert writer.events_written == len(events)
    assert writer.bytes_written == len(data)
    assert _decode(data) == events


@given(seq=_SEQS)
@settings(max_examples=40, deadline=None, derandomize=True)
def test_property_round_trip_via_file(seq):
    import tempfile
    from pathlib import Path

    events = _materialise(seq)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "t.bin"
        with path.open("wb") as fh:
            writer = TraceWriter(fh)
            for event in events:
                writer.write(event)
            writer.close()
        assert path.stat().st_size == writer.bytes_written
        assert codec.is_binary_trace(path)
        assert list(load_trace(path)) == events
        if events:
            stats = trace_stats(path)
            assert stats["events"] == len(events)
            assert sum(stats["by_type"].values()) == len(events)


# ----------------------------------------------------------------------
# replay_blocks ≡ decoded events, across subscription shapes
# ----------------------------------------------------------------------


class _Collector:
    """Copies every observed flyweight's fields out as a dict (the
    handler contract: never retain the event object itself)."""

    def __init__(self):
        self.seen: list[tuple] = []

    def __call__(self, event, vm):
        fields = {
            name: getattr(event, name)
            for name in type(event).__slots__
        }
        self.seen.append((type(event).__name__.removeprefix("Replay"), fields))


def _expected(events, subscribed: set | None = None) -> list[tuple]:
    out = []
    for e in events:
        cls = type(e)
        if subscribed is not None and cls not in subscribed:
            continue
        fields = {
            name: getattr(e, name)
            for name in (f.name for f in cls.__dataclass_fields__.values())
        }
        out.append((cls.__name__, fields))
    return out


@given(seq=_SEQS, shape=st.sampled_from(["single", "double", "partial"]))
@settings(max_examples=60, deadline=None, derandomize=True)
def test_replay_blocks_matches_events(seq, shape):
    events = _materialise(seq)
    data, _ = _encode(events)

    if shape == "partial":
        # Only two types subscribed — other blocks must be skipped
        # undecoded yet the event *count* still covers the whole file.
        subscribed = {MemoryAccess, ClientRequest}
    else:
        subscribed = set(EVENT_TYPES)

    collector = _Collector()
    second = _Collector()
    handler_table = []
    for cls in EVENT_TYPES:
        if cls not in subscribed:
            handler_table.append(())
        elif shape == "double":
            handler_table.append((collector, second))
        else:
            handler_table.append((collector,))

    count = codec.replay_blocks(data, handler_table, vm=None)
    assert count == len(events)
    want = _expected(
        events, None if subscribed == set(EVENT_TYPES) else subscribed
    )
    assert collector.seen == want
    if shape == "double":
        assert second.seen == want


def test_replay_blocks_no_subscribers_counts_only():
    data, _ = _encode(_ONE_OF_EACH)
    count = codec.replay_blocks(data, [() for _ in EVENT_TYPES], vm=None)
    assert count == len(_ONE_OF_EACH)


# ----------------------------------------------------------------------
# Page histogram (the shard-balance predictor behind `trace stat`)
# ----------------------------------------------------------------------


def test_page_histogram_counts_pages_and_skew():
    page = 1 << codec.DEFAULT_PAGE_BITS
    events = (
        # 6 accesses on page 0, 2 on page 3 — skew = 6 / mean(4) = 1.5.
        [MemoryAccess(i, 0, i, AccessKind.READ, False, -1) for i in range(6)]
        + [MemoryAccess(6, 0, 3 * page, AccessKind.WRITE, False, -1),
           MemoryAccess(7, 1, 3 * page + 8, AccessKind.READ, False, -1)]
        # Non-access events must not count.
        + [LockAcquire(8, 0, 7, LockMode.WRITE, True)]
    )
    data, _ = _encode(events)
    hist = codec.page_histogram(data)
    assert hist["accesses"] == 8
    assert hist["pages"] == 2
    assert hist["top"] == [(0, 6), (3, 2)]
    assert hist["skew"] == pytest.approx(1.5)

    # `top` truncates but `pages`/`accesses` still cover everything.
    assert codec.page_histogram(data, top=1)["top"] == [(0, 6)]


def test_page_histogram_empty_and_invalid():
    data, _ = _encode([])
    hist = codec.page_histogram(data)
    assert hist == {"accesses": 0, "pages": 0, "top": [], "skew": 0.0}
    with pytest.raises(ValueError):
        codec.page_histogram(b"nope")


def test_writer_block_rows_cap_bounds_block_size():
    """`block_rows` caps rows per block so the page index stays
    fine-grained even for single-type event streams."""
    events = [
        MemoryAccess(i, 0, i, AccessKind.READ, False, -1) for i in range(10)
    ]
    data, _ = _encode(events)
    capped = io.BytesIO()
    writer = TraceWriter(capped, block_rows=3)
    for event in events:
        writer.write(event)
    writer.close()

    assert _decode(capped.getvalue()) == _decode(data)
    sizes = [
        len(block) // s.size
        for _t, _stacks, _strings, s, block, _base in read_blocks(
            capped.getvalue()
        )
    ]
    assert sizes == [3, 3, 3, 1]
    with pytest.raises(ValueError):
        TraceWriter(io.BytesIO(), block_rows=0)
