"""Tests for the VM core: threads, memory traps, faults, limits."""

from __future__ import annotations

import pytest

from repro.errors import DeadlockError, GuestFault, StepLimitExceeded, VMError
from repro.runtime import VM, RandomScheduler
from repro.runtime.events import MemAlloc, MemoryAccess, ThreadCreate, ThreadFinish, ThreadJoin
from tests.conftest import record_trace, run_program


class TestBasicExecution:
    def test_run_returns_main_result(self):
        result, _ = run_program(lambda api: 42)
        assert result == 42

    def test_run_passes_args(self):
        result, _ = run_program(lambda api, a, b: a + b, 3, 4)
        assert result == 7

    def test_vm_is_single_use(self):
        vm = VM()
        vm.run(lambda api: None)
        with pytest.raises(VMError, match="only run once"):
            vm.run(lambda api: None)

    def test_cannot_add_detector_after_start(self):
        vm = VM()
        vm.run(lambda api: None)
        with pytest.raises(VMError):
            vm.add_detector(object())

    def test_finished_flag(self):
        vm = VM()
        assert not vm.finished
        vm.run(lambda api: None)
        assert vm.finished


class TestMemoryTraps:
    def test_malloc_store_load(self):
        def prog(api):
            addr = api.malloc(4, tag="x")
            api.store(addr + 1, "v")
            return api.load(addr + 1)

        result, vm = run_program(prog)
        assert result == "v"
        assert vm.stats.events["MemAlloc"] == 1
        assert vm.stats.events["MemoryAccess"] == 2

    def test_memory_events_carry_block_and_stack(self):
        def prog(api):
            with api.frame("init", "main.cpp", 7):
                addr = api.malloc(1, tag="x")
                api.store(addr, 1)

        events, _ = record_trace(prog)
        store = [e for e in events if isinstance(e, MemoryAccess)][0]
        assert store.block_id >= 0
        assert store.site.function == "init"
        assert store.site.file == "main.cpp"

    def test_at_updates_site_line(self):
        def prog(api):
            addr = api.malloc(1)
            with api.frame("f", "a.cpp", 1):
                api.at(10)
                api.store(addr, 0)
                api.at(20)
                api.store(addr, 1)

        events, _ = record_trace(prog)
        lines = [e.site.line for e in events if isinstance(e, MemoryAccess)]
        assert lines == [10, 20]

    def test_guest_fault_propagates(self):
        with pytest.raises(GuestFault, match="wild"):
            run_program(lambda api: api.store(0xBAD, 1))

    def test_fault_in_child_halts_vm(self):
        def prog(api):
            def bad(a):
                a.load(0xBAD)

            t = api.spawn(bad)
            api.join(t)

        with pytest.raises(GuestFault):
            run_program(prog)

    def test_free_emits_event_and_invalidates(self):
        def prog(api):
            addr = api.malloc(2)
            api.store(addr, 1)
            api.free(addr)
            api.load(addr)

        with pytest.raises(GuestFault, match="freed"):
            run_program(prog)


class TestAtomics:
    def test_atomic_add_returns_old(self):
        def prog(api):
            addr = api.malloc(1)
            api.store(addr, 10)
            old = api.atomic_add(addr, 5)
            return old, api.load(addr)

        result, _ = run_program(prog)
        assert result == (10, 15)

    def test_atomic_add_is_indivisible(self):
        """Concurrent atomic_adds never lose updates, unlike load+store."""

        def prog(api):
            addr = api.malloc(1)
            api.store(addr, 0)

            def worker(a):
                for _ in range(50):
                    a.atomic_add(addr, 1)

            ts = [api.spawn(worker) for _ in range(4)]
            for t in ts:
                api.join(t)
            return api.load(addr)

        for seed in range(3):
            result, _ = run_program(prog, scheduler=RandomScheduler(seed))
            assert result == 200

    def test_plain_increment_loses_updates_under_some_schedule(self):
        """The racy version genuinely corrupts data for at least one seed."""

        def prog(api):
            addr = api.malloc(1)
            api.store(addr, 0)

            def worker(a):
                for _ in range(20):
                    a.store(addr, a.load(addr) + 1)

            ts = [api.spawn(worker) for _ in range(3)]
            for t in ts:
                api.join(t)
            return api.load(addr)

        results = {run_program(prog, scheduler=RandomScheduler(s))[0] for s in range(5)}
        assert any(r < 60 for r in results), results

    def test_atomic_events_are_bus_locked(self):
        def prog(api):
            addr = api.malloc(1)
            api.store(addr, 0)
            api.atomic_add(addr, 1)

        events, _ = record_trace(prog)
        locked = [e for e in events if isinstance(e, MemoryAccess) and e.bus_locked]
        assert len(locked) == 2  # the RMW's read + write
        assert locked[0].kind.value == "read"
        assert locked[1].kind.value == "write"

    def test_cas_success_and_failure(self):
        def prog(api):
            addr = api.malloc(1)
            api.store(addr, 5)
            ok1 = api.atomic_cas(addr, 5, 6)
            ok2 = api.atomic_cas(addr, 5, 7)
            return ok1, ok2, api.load(addr)

        result, _ = run_program(prog)
        assert result == (True, False, 6)

    def test_atomic_add_on_non_integer_faults(self):
        def prog(api):
            addr = api.malloc(1)
            api.store(addr, "not an int")
            api.atomic_add(addr, 1)

        with pytest.raises(GuestFault, match="non-integer"):
            run_program(prog)


class TestThreads:
    def test_spawn_join_returns_child_result(self):
        def prog(api):
            t = api.spawn(lambda a: "child-value")
            return api.join(t)

        result, _ = run_program(prog)
        assert result == "child-value"

    def test_thread_lifecycle_events(self):
        def prog(api):
            t = api.spawn(lambda a: None, name="w")
            api.join(t)

        events, _ = record_trace(prog)
        kinds = [type(e).__name__ for e in events]
        assert "ThreadCreate" in kinds
        assert "ThreadFinish" in kinds
        assert "ThreadJoin" in kinds
        create = next(e for e in events if isinstance(e, ThreadCreate))
        join = next(e for e in events if isinstance(e, ThreadJoin))
        assert create.child_tid == join.joined_tid

    def test_join_already_finished_thread(self):
        def prog(api):
            t = api.spawn(lambda a: 9)
            api.sleep(10)  # let the child definitely finish
            return api.join(t)

        result, _ = run_program(prog)
        assert result == 9

    def test_join_self_faults(self):
        def prog(api):
            api.join(api.thread)

        with pytest.raises(GuestFault, match="itself"):
            run_program(prog)

    def test_unjoined_threads_still_complete(self):
        """Main returning early does not kill detached children."""
        box = []

        def prog(api):
            def child(a):
                a.sleep(5)
                box.append("done")

            api.spawn(child)
            return "main-done"

        result, _ = run_program(prog)
        assert result == "main-done"
        assert box == ["done"]

    def test_nested_spawn(self):
        def prog(api):
            def middle(a):
                t = a.spawn(lambda b: 3)
                return a.join(t) + 1

            t = api.spawn(middle)
            return api.join(t) + 1

        result, _ = run_program(prog)
        assert result == 5

    def test_many_threads(self):
        def prog(api):
            addr = api.malloc(1)
            api.store(addr, 0)
            m = api.mutex()

            def worker(a):
                a.lock(m)
                a.store(addr, a.load(addr) + 1)
                a.unlock(m)

            ts = [api.spawn(worker) for _ in range(30)]
            for t in ts:
                api.join(t)
            return api.load(addr)

        result, vm = run_program(prog)
        assert result == 30
        assert vm.stats.threads_created == 31
        assert vm.stats.max_live_threads >= 2


class TestLimitsAndDeadlock:
    def test_step_limit(self):
        def spin(api):
            addr = api.malloc(1)
            api.store(addr, 0)
            while True:
                api.load(addr)

        with pytest.raises(StepLimitExceeded):
            run_program(spin, step_limit=500)

    def test_deadlock_two_mutexes(self):
        def prog(api):
            m1, m2 = api.mutex("A"), api.mutex("B")

            def w1(a):
                a.lock(m1)
                a.yield_()
                a.lock(m2)

            def w2(a):
                a.lock(m2)
                a.yield_()
                a.lock(m1)

            t1, t2 = api.spawn(w1), api.spawn(w2)
            api.join(t1)
            api.join(t2)

        with pytest.raises(DeadlockError) as exc_info:
            run_program(prog)
        blocked_tids = {tid for tid, _ in exc_info.value.blocked}
        assert len(blocked_tids) == 3  # the two workers + joining main

    def test_starved_queue_get_is_deadlock(self):
        def prog(api):
            q = api.queue()
            api.get(q)  # nobody will ever put

        with pytest.raises(DeadlockError):
            run_program(prog)

    def test_self_join_like_wait_detected(self):
        def prog(api):
            cv, m = api.condvar(), api.mutex()
            api.lock(m)
            api.cond_wait(cv, m)  # nobody signals

        with pytest.raises(DeadlockError):
            run_program(prog)


class TestStats:
    def test_stats_event_counts(self):
        def prog(api):
            addr = api.malloc(1)
            api.store(addr, 0)
            api.load(addr)

        _, vm = run_program(prog)
        assert vm.stats.events["MemAlloc"] == 1
        assert vm.stats.events["MemoryAccess"] == 2
        assert vm.stats.total_events == vm.clock

    def test_single_thread_avoids_host_switches(self):
        """With one runnable thread the fast path skips carrier hand-offs."""

        def prog(api):
            addr = api.malloc(1)
            api.store(addr, 0)
            for _ in range(100):
                api.load(addr)

        _, vm = run_program(prog)
        # Only the initial dispatch of main should count as a switch.
        assert vm.stats.switches <= 2


class TestApiDetails:
    def test_spawn_names_threads(self):
        def prog(api):
            t = api.spawn(lambda a: None, name="worker-7")
            api.join(t)
            return t.name

        result, _ = run_program(prog)
        assert result == "worker-7"

    def test_default_thread_names(self):
        def prog(api):
            t = api.spawn(lambda a: None)
            api.join(t)
            return t.name

        result, _ = run_program(prog)
        assert result == "thread-1"

    def test_sleep_zero_is_noop(self):
        def prog(api):
            api.sleep(0)
            return "done"

        result, _ = run_program(prog)
        assert result == "done"

    def test_frames_unwound_on_guest_fault(self):
        """The frame context manager pops even when the body raises."""
        from repro.errors import GuestFault

        def prog(api):
            try_depths = []
            with api.frame("outer", "x.cpp", 1):
                try_depths.append(len(api.thread.frames))
            try_depths.append(len(api.thread.frames))
            return try_depths

        result, _ = run_program(prog)
        assert result == [1, 0]

    def test_guest_fault_carries_tid(self):
        from repro.errors import GuestFault

        def prog(api):
            def child(a):
                a.load(0xBAD)

            t = api.spawn(child)
            api.join(t)

        try:
            run_program(prog)
        except GuestFault as fault:
            assert fault.tid == 1
        else:  # pragma: no cover
            raise AssertionError("expected GuestFault")

    def test_client_request_rejects_empty_range(self):
        from repro.errors import GuestFault

        def prog(api):
            addr = api.malloc(1)
            api.hg_destruct(addr, 0)

        import pytest

        with pytest.raises(GuestFault, match="non-positive"):
            run_program(prog)

    def test_benign_range_spans_multiple_words(self):
        from repro.detectors import HelgrindConfig, HelgrindDetector

        def prog(api):
            block = api.malloc(4, tag="stats")
            for i in range(4):
                api.store(block + i, 0)
            api.benign_race(block, 4)

            def w(a):
                for i in range(4):
                    a.store(block + i, a.load(block + i) + 1)

            t1, t2 = api.spawn(w), api.spawn(w)
            api.join(t1)
            api.join(t2)

        det = HelgrindDetector(HelgrindConfig.original())
        run_program(prog, detectors=(det,))
        assert det.report.location_count == 0

    def test_sync_object_reprs(self):
        def prog(api):
            m = api.mutex("guard")
            rw = api.rwlock("cache")
            q = api.queue(maxsize=2, name="jobs")
            sem = api.semaphore(1, name="slots")
            bar = api.barrier(2, name="sync")
            cv = api.condvar("ready")
            api.lock(m)
            reprs = [repr(m), repr(rw), repr(q), repr(sem), repr(bar), repr(cv)]
            api.unlock(m)
            return reprs

        result, _ = run_program(prog)
        assert "guard" in result[0] and "t0" in result[0]
        assert "free" in result[1]
        assert "0/2" in result[2]
        assert "count=1" in result[3]
        assert "0/2" in result[4]
        assert "waiters=0" in result[5]
