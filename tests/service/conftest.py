"""Shared fixtures for the service test suite.

The ``traces`` fixture is the byte-identity oracle both the
single-process tests (``test_service.py``) and the sharded tests
(``test_shard.py``) measure against: every report the service produces
must equal the offline ``repro trace replay`` report byte-for-byte,
whatever process the session happened to land on.
"""

from __future__ import annotations

import json

import pytest

from repro.api.profiles import profile
from repro.detectors import HelgrindDetector
from repro.runtime.trace import replay_trace

CASES = ("T1", "T2", "T3")
CONFIGS = ("original", "hwlc", "hwlc+dr")


@pytest.fixture(scope="package")
def traces(tmp_path_factory):
    """T1–T3 recorded under each paper configuration, plus the offline
    reference report bytes: ``{(case, config): (path, report_bytes)}``."""
    from repro.experiments.harness import run_proxy_case
    from repro.runtime.trace import TraceRecorder
    from repro.sip.workload import evaluation_cases

    root = tmp_path_factory.mktemp("service-traces")
    by_id = {c.case_id: c for c in evaluation_cases()}
    out = {}
    for case_id in CASES:
        for config in CONFIGS:
            path = root / f"{case_id}-{config.replace('+', '_')}.rptr"
            with TraceRecorder(path, format="binary") as recorder:
                run_proxy_case(by_id[case_id], config, seed=42,
                               extra_hooks=(recorder,))
            det = HelgrindDetector(profile(config).config())
            replay_trace(path, det)
            reference = json.dumps(det.report.to_dict(), indent=2).encode()
            out[(case_id, config)] = (path, reference)
    return out
