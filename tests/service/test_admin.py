"""Tests for the ops plane: HTTP admin endpoint, worker-error
accounting, trace-id correlation, and the crash flight recorder.

The admin listener is read-only glass over a running server — these
tests assert the glass shows the truth: ``/sessions`` names the worker
that really owns the session (the hash ring's slot), ``/metrics`` is
the same merged snapshot ``repro client stat`` renders, ``/readyz``
flips to 503 the moment a drain begins, and a SIGKILLed worker leaves
a flight dump behind for the post-mortem.
"""

from __future__ import annotations

import io
import json
import os
import signal
import time
import urllib.error
import urllib.request

from repro.service import (
    AdminServer,
    AnalysisClient,
    AnalysisServer,
    ShardedAnalysisServer,
    fetch_report,
)
from repro.service.admin import ROUTES
from repro.telemetry.logs import StructuredLogger, read_flight_records
from repro.telemetry.schema import validate_snapshot


def _get(address: tuple[str, int], path: str) -> tuple[int, str]:
    url = f"http://{address[0]}:{address[1]}{path}"
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, resp.read().decode("utf-8")
    except urllib.error.HTTPError as err:  # 4xx/5xx still carry a body
        return err.code, err.read().decode("utf-8")


def _wait_until(cond, timeout: float = 15.0, interval: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cond():
            return True
        time.sleep(interval)
    return cond()


def _counter(snapshot: dict, name: str) -> float:
    family = snapshot.get("metrics", {}).get(name)
    return sum(s["value"] for s in family["samples"]) if family else 0.0


class TestAdminSingleProcess:
    def test_probes_and_route_listing(self, tmp_path):
        server = AnalysisServer(socket_path=str(tmp_path / "a.sock"))
        server.start()
        admin = AdminServer(server, port=0)
        admin.start()
        try:
            status, body = _get(admin.address, "/healthz")
            health = json.loads(body)
            assert status == 200
            assert health["status"] == "ok"
            assert health["pid"] == os.getpid()
            assert health["uptime_seconds"] >= 0

            status, body = _get(admin.address, "/readyz")
            assert status == 200
            assert json.loads(body) == {"status": "ready"}

            status, body = _get(admin.address, "/")
            assert status == 200
            assert json.loads(body)["routes"] == ROUTES

            status, body = _get(admin.address, "/no-such-route")
            assert status == 404
            assert sorted(ROUTES) == json.loads(body)["routes"]

            # trailing slashes and query strings are tolerated
            assert _get(admin.address, "/healthz/")[0] == 200
            assert _get(admin.address, "/metrics?scrape=1")[0] == 200
        finally:
            admin.shutdown()
            server.shutdown(drain=True, timeout=10.0)

    def test_metrics_views_reflect_finished_sessions(self, tmp_path, traces):
        server = AnalysisServer(socket_path=str(tmp_path / "a.sock"))
        server.start()
        admin = AdminServer(server, port=0)
        admin.start()
        try:
            path, reference = traces[("T1", "hwlc+dr")]
            assert fetch_report(path, socket_path=server.address) == reference

            status, text = _get(admin.address, "/metrics")
            assert status == 200
            assert "# TYPE repro_service_sessions_total counter" in text
            assert "repro_service_sessions_total 1" in text

            status, body = _get(admin.address, "/metrics.json")
            assert status == 200
            snapshot = json.loads(body)
            validate_snapshot(snapshot)
            assert _counter(snapshot, "repro_service_reports_total") == 1
        finally:
            admin.shutdown()
            server.shutdown(drain=True, timeout=10.0)

    def test_sessions_view_tracks_the_session_lifecycle(
        self, tmp_path, traces
    ):
        server = AnalysisServer(socket_path=str(tmp_path / "a.sock"))
        server.start()
        admin = AdminServer(server, port=0)
        admin.start()
        client = AnalysisClient(socket_path=server.address)
        try:
            welcome = client.hello("hwlc+dr")
            assert welcome["trace"]  # correlation id minted at open

            status, body = _get(admin.address, "/sessions")
            assert status == 200
            (entry,) = json.loads(body)["sessions"]
            assert entry["session"] == welcome["session"]
            assert entry["worker"] == "w0"
            assert entry["state"] == "active"
            assert entry["config"] == "hwlc+dr"
            assert entry["trace"] == welcome["trace"]

            path, reference = traces[("T1", "hwlc+dr")]
            client.stream_file(path)
            assert client.finish() == reference
            # the finished session leaves the live view
            assert _wait_until(
                lambda: json.loads(_get(admin.address, "/sessions")[1])[
                    "sessions"
                ]
                == []
            )

            status, body = _get(admin.address, "/workers")
            (worker,) = json.loads(body)["workers"]
            assert worker["worker"] == "w0"
            assert worker["pid"] == os.getpid()
            assert worker["alive"] is True
            assert worker["restarts"] == 0
        finally:
            client.close()
            admin.shutdown()
            server.shutdown(drain=True, timeout=10.0)

    def test_readyz_flips_to_503_on_drain(self, tmp_path):
        server = AnalysisServer(socket_path=str(tmp_path / "a.sock"))
        server.start()
        admin = AdminServer(server, port=0)
        admin.start()
        try:
            assert _get(admin.address, "/readyz")[0] == 200
            server.shutdown(drain=True, timeout=10.0)
            status, body = _get(admin.address, "/readyz")
            assert status == 503
            assert json.loads(body) == {"status": "draining"}
        finally:
            admin.shutdown()


class TestAdminSharded:
    def test_sessions_name_the_owning_worker(self, tmp_path, traces):
        server = ShardedAnalysisServer(
            socket_path=str(tmp_path / "shard.sock"), workers=2, threads=1
        )
        server.start()
        admin = AdminServer(server, port=0)
        admin.start()
        client = AnalysisClient(socket_path=server.address)
        try:
            welcome = client.hello("hwlc+dr")
            session_id = welcome["session"]
            owner = f"w{server.ring.slot(session_id)}"
            # the acceptor minted the trace id and the worker echoed it
            assert welcome["trace"].startswith(session_id + "-")

            def listed() -> list[dict]:
                return json.loads(_get(admin.address, "/sessions")[1])[
                    "sessions"
                ]

            assert _wait_until(
                lambda: any(s["session"] == session_id for s in listed())
            )
            (entry,) = [s for s in listed() if s["session"] == session_id]
            assert entry["worker"] == owner
            assert entry["trace"] == welcome["trace"]

            status, body = _get(admin.address, "/workers")
            workers = json.loads(body)["workers"]
            assert [w["worker"] for w in workers] == ["w0", "w1"]
            assert all(w["alive"] for w in workers)
            assert len({w["pid"] for w in workers}) == 2
            assert all(w["restarts"] == 0 for w in workers)

            path, reference = traces[("T1", "hwlc+dr")]
            client.stream_file(path)
            assert client.finish() == reference

            status, text = _get(admin.address, "/metrics")
            assert status == 200
            assert "repro_service_workers 2" in text
            snapshot = json.loads(_get(admin.address, "/metrics.json")[1])
            validate_snapshot(snapshot)
            assert _counter(snapshot, "repro_service_sessions_total") == 1
        finally:
            client.close()
            admin.shutdown()
            server.shutdown(drain=True, timeout=30.0)


class TestWorkerErrorAccounting:
    def test_worker_loop_survives_counts_and_logs(
        self, tmp_path, traces, monkeypatch
    ):
        """A bug in batch processing must not kill the worker thread:
        the loop counts it, logs the traceback with the session id, and
        keeps serving other sessions."""
        from repro.service import session as session_mod

        stream = io.StringIO()
        server = AnalysisServer(
            socket_path=str(tmp_path / "a.sock"),
            logger=StructuredLogger(stream, level="error"),
        )
        server.start()
        client = AnalysisClient(socket_path=server.address)
        try:
            def boom(self):
                raise RuntimeError("injected batch failure")

            monkeypatch.setattr(
                session_mod.ServiceSession, "_process_batch", boom
            )
            client.hello("hwlc+dr")
            session_id = client.session_id
            client.send(b"\x00" * 64)
            assert _wait_until(
                lambda: _counter(
                    server.stats_payload(),
                    "repro_service_worker_errors_total",
                )
                >= 1
            ), "worker error was never counted"
            monkeypatch.undo()

            records = [
                json.loads(line)
                for line in stream.getvalue().splitlines()
                if line
            ]
            errors = [r for r in records if r["event"] == "worker_error"]
            assert errors, records
            assert errors[0]["session"] == session_id
            assert "RuntimeError: injected batch failure" in (
                errors[0]["traceback"]
            )

            # the server is still fully operational afterwards
            path, reference = traces[("T1", "hwlc+dr")]
            assert fetch_report(path, socket_path=server.address) == reference
        finally:
            client.close()
            server.shutdown(drain=True, timeout=10.0)


class TestFlightRecorder:
    def test_sigkilled_worker_leaves_a_flight_dump(self, tmp_path, traces):
        """kill -9 mid-session: the supervisor preserves the victim's
        spooled ring as ``flight-w<slot>-<ts>.jsonl`` before respawning
        the slot, and the dump holds the last protocol frames."""
        path, _reference = traces[("T2", "hwlc+dr")]
        data = path.read_bytes()
        ckpt = tmp_path / "ckpt"
        server = ShardedAnalysisServer(
            socket_path=str(tmp_path / "shard.sock"),
            workers=2,
            threads=1,
            checkpoint_dir=str(ckpt),
            checkpoint_every=1,
        )
        server.start()
        client = AnalysisClient(socket_path=server.address, chunk_bytes=1024)
        try:
            client.hello("hwlc+dr")
            slot = server.ring.slot(client.session_id)
            victim = server._slots[slot].proc.pid
            spool = ckpt / f"flight-w{slot}.spool"

            half = len(data) // 2
            pos = 0
            while pos < half:
                client.send(data[pos:pos + 1024])
                pos += 1024
            # the time-based sync guarantees the spool exists shortly
            # even under light traffic
            assert _wait_until(spool.exists), "flight spool never synced"
            os.kill(victim, signal.SIGKILL)
            client.close()

            def dumped() -> list:
                return list(ckpt.glob(f"flight-w{slot}-*.jsonl"))

            assert _wait_until(lambda: bool(dumped())), (
                "supervisor never dumped the flight spool"
            )
            (dump,) = dumped()
            assert not spool.exists()  # renamed, not copied
            records = read_flight_records(dump)
            assert records
            frames = [r for r in records if r.get("event") == "frame"]
            assert frames and frames[-1]["dir"] == "recv"
            assert any(r["frame"] == "DATA" for r in frames)
        finally:
            client.close()
            server.shutdown(drain=True, timeout=30.0)

    def test_clean_drain_deletes_the_spools(self, tmp_path, traces):
        """A graceful shutdown is not a crash: workers delete their
        spools on the way out, so a surviving spool file always means
        an abnormal exit."""
        ckpt = tmp_path / "ckpt"
        server = ShardedAnalysisServer(
            socket_path=str(tmp_path / "shard.sock"),
            workers=2,
            threads=1,
            checkpoint_dir=str(ckpt),
        )
        server.start()
        try:
            path, reference = traces[("T1", "hwlc+dr")]
            assert fetch_report(path, socket_path=server.address) == reference
            assert _wait_until(
                lambda: any(ckpt.glob("flight-w*.spool"))
            ), "workers never spooled their rings"
        finally:
            server.shutdown(drain=True, timeout=30.0)
        assert not list(ckpt.glob("flight-w*.spool"))
        assert not list(ckpt.glob("flight-w*-*.jsonl"))
