"""Integration tests for the streaming analysis service.

The contracts under test are the tentpole's acceptance criteria:

* a session's report is **byte-identical** to the offline
  ``repro trace replay`` report, for T1–T3 under all three paper
  configurations, with any number of concurrent sessions;
* a **killed** server (no drain) resumes a checkpointed session
  mid-stream and still produces the identical report;
* the per-session ingest queue **never buffers more than the
  configured bound** and credit exhaustion is visible as
  ``repro_service_backpressure_stalls_total``;
* the CLI round trip (``repro client report``/``stat``) works over a
  unix socket against an in-process server.

Servers run in-process (threads), so each test owns its lifecycle and
nothing leaks between tests.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.service import (
    AnalysisClient,
    AnalysisServer,
    CheckpointStore,
    ServiceError,
    fetch_report,
)

from tests.service.conftest import CASES, CONFIGS  # shared with test_shard


@pytest.fixture
def unix_server(tmp_path):
    server = AnalysisServer(
        socket_path=str(tmp_path / "repro.sock"), workers=2
    )
    server.start()
    yield server
    server.shutdown(drain=True, timeout=10.0)


def _family(server, name):
    with server.registry_lock:
        return server.registry.snapshot()["metrics"].get(name)


def _sample_values(server, name):
    family = _family(server, name)
    return [s["value"] for s in family["samples"]] if family else []


class TestRoundTrip:
    def test_report_byte_identical_over_unix_socket(self, unix_server, traces):
        path, reference = traces[("T1", "hwlc+dr")]
        got = fetch_report(path, "hwlc+dr", socket_path=unix_server.address)
        assert got == reference

    @pytest.mark.parametrize("config", CONFIGS)
    def test_concurrent_sessions_all_cases(self, unix_server, traces, config):
        """Three sessions streaming T1–T3 at once, tiny chunks so their
        blocks interleave on the worker pool: every report must equal
        its offline twin byte-for-byte."""
        results: dict[str, bytes] = {}
        errors: list[Exception] = []

        def one(case_id: str) -> None:
            try:
                results[case_id] = fetch_report(
                    traces[(case_id, config)][0],
                    config,
                    socket_path=unix_server.address,
                    chunk_bytes=1024,
                )
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=one, args=(case_id,)) for case_id in CASES
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        for case_id in CASES:
            assert results[case_id] == traces[(case_id, config)][1], case_id

    def test_session_metrics_populated(self, unix_server, traces):
        path, _ = traces[("T1", "hwlc+dr")]
        fetch_report(path, socket_path=unix_server.address)
        assert sum(
            _sample_values(unix_server, "repro_service_bytes_ingested_total")
        ) == path.stat().st_size
        assert sum(
            _sample_values(unix_server, "repro_service_reports_total")
        ) == 1
        assert _sample_values(unix_server, "repro_service_sessions_total") == [1]

    def test_stats_frame_matches_registry(self, unix_server, traces):
        path, _ = traces[("T1", "hwlc+dr")]
        fetch_report(path, socket_path=unix_server.address)
        with AnalysisClient(socket_path=unix_server.address) as client:
            snapshot = client.stats()
        names = set(snapshot["metrics"])
        assert {
            "repro_service_sessions_total",
            "repro_service_events_total",
            "repro_service_queue_high_water",
            "repro_service_backpressure_stalls_total",
        } <= names


class TestErrors:
    def test_unknown_config_rejected(self, unix_server):
        with AnalysisClient(socket_path=unix_server.address) as client:
            with pytest.raises(ServiceError) as exc:
                client.hello("helgrind++")
        assert "hwlc+dr" in str(exc.value)  # the error lists known names

    def test_resume_without_checkpoint_dir(self, unix_server):
        with AnalysisClient(socket_path=unix_server.address) as client:
            with pytest.raises(ServiceError):
                client.hello(session="s0001")

    def test_data_before_hello(self, unix_server):
        with AnalysisClient(socket_path=unix_server.address) as client:
            with pytest.raises(ServiceError):
                client.send(b"xx")

    def test_corrupt_stream_fails_session_not_server(self, unix_server, traces):
        """Garbage bytes must kill the *session* (ERROR frame, metric)
        — never a worker thread; the next client is unaffected."""
        with AnalysisClient(socket_path=unix_server.address) as client:
            client.hello("hwlc+dr")
            client.send(b"NOPE this is not RPTR at all")
            with pytest.raises(ServiceError) as exc:
                client.finish()
        assert "bad magic" in str(exc.value)
        assert sum(
            _sample_values(unix_server, "repro_service_analysis_errors_total")
        ) == 1
        # Both workers must still be alive and serving.
        path, reference = traces[("T1", "hwlc+dr")]
        for _ in range(2):
            assert fetch_report(
                path, socket_path=unix_server.address
            ) == reference


class TestKillAndResume:
    def test_killed_server_resumes_byte_identical(self, tmp_path, traces):
        path, reference = traces[("T2", "hwlc+dr")]
        data = path.read_bytes()
        ckpt_dir = tmp_path / "ckpt"

        server1 = AnalysisServer(
            socket_path=str(tmp_path / "one.sock"),
            workers=1,
            checkpoint_dir=str(ckpt_dir),
            checkpoint_every=300,
        )
        server1.start()
        client = AnalysisClient(socket_path=server1.address)
        client.hello("hwlc+dr")
        session_id = client.session_id
        # Stream roughly half the trace, then wait until the periodic
        # checkpoint cadence has fired at least once.
        half = len(data) // 2
        pos = 0
        while pos < half:
            client.send(data[pos:pos + 4096])
            pos += 4096
        store = CheckpointStore(ckpt_dir)
        deadline = time.monotonic() + 10
        while not store.session_ids() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert store.session_ids() == [session_id]
        server1.shutdown(drain=False)  # the crash
        client.close()

        ckpt = store.load(session_id)
        assert 0 < ckpt.offset < len(data)

        server2 = AnalysisServer(
            socket_path=str(tmp_path / "two.sock"),
            workers=1,
            checkpoint_dir=str(ckpt_dir),
        )
        server2.start()
        try:
            got = fetch_report(
                path, socket_path=server2.address, session=session_id
            )
            assert got == reference
            assert _sample_values(
                server2, "repro_service_sessions_resumed_total"
            ) == [1]
            # A finished session's checkpoint is garbage-collected
            # (by the worker shortly after it ships the report).
            deadline = time.monotonic() + 5
            while store.session_ids() and time.monotonic() < deadline:
                time.sleep(0.02)
            assert store.session_ids() == []
        finally:
            server2.shutdown(drain=True, timeout=10.0)

    def test_fresh_ids_skip_checkpointed_sessions(self, tmp_path, traces):
        """After a restart, fresh session ids must not collide with a
        prior incarnation's resumable checkpoints — a collision would
        overwrite, then delete, the other client's checkpoint file."""
        path, reference = traces[("T1", "hwlc+dr")]
        data = path.read_bytes()
        ckpt_dir = tmp_path / "ckpt"
        server1 = AnalysisServer(
            socket_path=str(tmp_path / "one.sock"),
            workers=1,
            checkpoint_dir=str(ckpt_dir),
            checkpoint_every=1,
        )
        server1.start()
        client = AnalysisClient(socket_path=server1.address)
        client.hello("hwlc+dr")
        old_id = client.session_id
        client.send(data[:8192])
        store = CheckpointStore(ckpt_dir)
        deadline = time.monotonic() + 10
        while not store.session_ids() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert store.session_ids() == [old_id]
        server1.shutdown(drain=False)
        client.close()

        server2 = AnalysisServer(
            socket_path=str(tmp_path / "two.sock"),
            workers=1,
            checkpoint_dir=str(ckpt_dir),
        )
        server2.start()
        try:
            # A full fresh run (open → stream → finish, which deletes
            # *its own* checkpoint) must get a new id and leave the old
            # checkpoint untouched…
            with AnalysisClient(socket_path=server2.address) as fresh:
                fresh.hello("hwlc+dr")
                assert fresh.session_id != old_id
                fresh.stream_file(path)
                assert fresh.finish() == reference
            assert store.session_ids() == [old_id]
            # …and the old session must still resume to the same bytes.
            assert fetch_report(
                path, socket_path=server2.address, session=old_id
            ) == reference
        finally:
            server2.shutdown(drain=True, timeout=10.0)

    def test_concurrent_resume_single_winner(self, tmp_path, traces,
                                             monkeypatch):
        """Two simultaneous HELLO{session: X} frames: exactly one may
        win; the loser gets 'already active' even though both arrive
        before the winner's checkpoint load completes."""
        path, reference = traces[("T2", "hwlc+dr")]
        data = path.read_bytes()
        ckpt_dir = tmp_path / "ckpt"
        server1 = AnalysisServer(
            socket_path=str(tmp_path / "one.sock"),
            workers=1,
            checkpoint_dir=str(ckpt_dir),
            checkpoint_every=1,
        )
        server1.start()
        client = AnalysisClient(socket_path=server1.address)
        client.hello("hwlc+dr")
        session_id = client.session_id
        client.send(data[:8192])
        store = CheckpointStore(ckpt_dir)
        deadline = time.monotonic() + 10
        while not store.session_ids() and time.monotonic() < deadline:
            time.sleep(0.02)
        server1.shutdown(drain=False)
        client.close()

        real_load = CheckpointStore.load
        monkeypatch.setattr(
            CheckpointStore,
            "load",
            lambda self, sid: (time.sleep(0.4), real_load(self, sid))[1],
        )
        server2 = AnalysisServer(
            socket_path=str(tmp_path / "two.sock"),
            workers=1,
            checkpoint_dir=str(ckpt_dir),
        )
        server2.start()
        outcomes: list[str] = []

        def try_resume(delay: float) -> None:
            time.sleep(delay)
            try:
                with AnalysisClient(socket_path=server2.address) as c:
                    c.hello(session=session_id)
                    outcomes.append("resumed")
            except ServiceError:
                outcomes.append("rejected")

        threads = [
            threading.Thread(target=try_resume, args=(delay,))
            for delay in (0.0, 0.15)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        try:
            assert sorted(outcomes) == ["rejected", "resumed"]
            # Wait out the winner's detach (async, on the worker pool),
            # then the session must resume cleanly from its checkpoint.
            deadline = time.monotonic() + 10
            while server2._sessions and time.monotonic() < deadline:
                time.sleep(0.02)
            assert fetch_report(
                path, socket_path=server2.address, session=session_id
            ) == reference
        finally:
            server2.shutdown(drain=True, timeout=10.0)

    def test_resume_active_session_rejected(self, tmp_path, traces):
        path, _ = traces[("T1", "hwlc+dr")]
        server = AnalysisServer(
            socket_path=str(tmp_path / "a.sock"),
            workers=1,
            checkpoint_dir=str(tmp_path / "ck"),
        )
        server.start()
        try:
            with AnalysisClient(socket_path=server.address) as first:
                first.hello("hwlc+dr")
                with AnalysisClient(socket_path=server.address) as second:
                    with pytest.raises(ServiceError):
                        second.hello(session=first.session_id)
        finally:
            server.shutdown(drain=True, timeout=10.0)


class TestBackpressure:
    def test_queue_bound_and_stalls(self, traces):
        """A slow consumer (throttled worker) must cap the per-session
        buffer at ``queue_blocks`` and surface the client's credit
        exhaustion as backpressure stalls."""
        path, reference = traces[("T2", "hwlc+dr")]
        bound = 3
        server = AnalysisServer(
            host="127.0.0.1", port=0, workers=1,
            queue_blocks=bound, throttle=0.01,
        )
        server.start()
        host, port = server.address
        try:
            with AnalysisClient(
                host=host, port=port, chunk_bytes=512
            ) as client:
                welcome = client.hello("hwlc+dr")
                assert welcome["credits"] == bound
                client.stream_file(path)
                assert client.finish() == reference
            high_water = _sample_values(
                server, "repro_service_queue_high_water"
            )
            stalls = _sample_values(
                server, "repro_service_backpressure_stalls_total"
            )
            assert high_water and max(high_water) <= bound
            assert stalls and stalls[0] >= 1
        finally:
            server.shutdown(drain=True, timeout=10.0)


class TestIdleTimeout:
    def test_backpressured_session_not_idle_closed(self, tmp_path, traces):
        """A credit-stalled but healthy client (slow worker draining a
        full queue) is mid-transfer, not idle: per-chunk drains count
        as activity and a session with work in flight is never reaped,
        even when one batch takes longer than ``idle_timeout``."""
        path, reference = traces[("T1", "hwlc+dr")]
        server = AnalysisServer(
            socket_path=str(tmp_path / "slow.sock"),
            workers=1,
            queue_blocks=2,
            throttle=0.08,  # 2-chunk batch = 0.16s > idle_timeout
            idle_timeout=0.15,
        )
        server.start()
        try:
            got = fetch_report(
                path, socket_path=server.address, chunk_bytes=4096
            )
            assert got == reference
            assert sum(
                _sample_values(server, "repro_service_idle_closed_total")
            ) == 0
        finally:
            server.shutdown(drain=True, timeout=10.0)

    def test_idle_session_checkpointed_and_resumable(self, tmp_path, traces):
        path, reference = traces[("T1", "hwlc+dr")]
        data = path.read_bytes()
        server = AnalysisServer(
            socket_path=str(tmp_path / "idle.sock"),
            workers=1,
            idle_timeout=0.15,
            checkpoint_dir=str(tmp_path / "ck"),
        )
        server.start()
        try:
            client = AnalysisClient(socket_path=server.address)
            client.hello("hwlc+dr")
            session_id = client.session_id
            client.send(data[:8192])
            store = CheckpointStore(tmp_path / "ck")
            deadline = time.monotonic() + 10
            while not store.session_ids() and time.monotonic() < deadline:
                time.sleep(0.02)
            assert store.session_ids() == [session_id]
            assert _sample_values(
                server, "repro_service_idle_closed_total"
            ) == [1]
            client.close()

            ckpt = store.load(session_id)
            got = fetch_report(
                path, socket_path=server.address, session=session_id
            )
            assert got == reference
            assert ckpt.offset <= len(data)
        finally:
            server.shutdown(drain=True, timeout=10.0)


class TestCliClient:
    def test_client_report_and_stat(self, unix_server, traces, tmp_path, capsys):
        from repro.cli import main

        path, reference = traces[("T3", "hwlc+dr")]
        out = tmp_path / "service-report.json"
        assert main([
            "client", "report", str(path), "hwlc+dr",
            "--socket", unix_server.address, "--report-out", str(out),
        ]) == 0
        printed = capsys.readouterr().out
        assert "reported locations" in printed
        assert out.read_bytes() == reference

        assert main(["client", "stat", "--socket", unix_server.address]) == 0
        printed = capsys.readouterr().out
        assert "repro_service_sessions_total" in printed

    def test_client_record_live_stream(self, unix_server, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "live-report.json"
        assert main([
            "client", "record", "T1", "hwlc+dr",
            "--socket", unix_server.address, "--report-out", str(out),
        ]) == 0
        printed = capsys.readouterr().out
        assert "streamed" in printed
        report = json.loads(out.read_bytes())
        assert report["warnings"]

    def test_endpoint_validation(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["client", "stat"])  # neither --socket nor --tcp
        with pytest.raises(SystemExit):
            main(["serve"])  # neither endpoint flag

    def test_client_help(self, capsys):
        from repro.cli import main

        assert main(["client"]) == 2
        assert "record" in capsys.readouterr().out


class TestFinishShards:
    """Opt-in FINISH-time sharded re-analysis (``--finish-shards N``).

    The session spools every ingested chunk; at FINISH the server
    replays the spool through the page-sharded parallel analyzer and
    byte-compares the result against the report it just served.  The
    outcome must land in ``repro_service_shard_verify_total``."""

    def _verify_totals(self, server):
        with server.registry_lock:
            family = server.registry.snapshot()["metrics"].get(
                "repro_service_shard_verify_total"
            )
        if family is None:
            return {}
        return {
            s["labels"]["result"]: s["value"] for s in family["samples"]
        }

    @pytest.mark.parametrize("finish_shards", (1, 2))
    def test_verify_matches_served_report(
        self, tmp_path, traces, finish_shards
    ):
        server = AnalysisServer(
            socket_path=str(tmp_path / "repro.sock"),
            workers=1,
            finish_shards=finish_shards,
        )
        server.start()
        try:
            path, reference = traces[("T1", "hwlc+dr")]
            got = fetch_report(path, "hwlc+dr", socket_path=server.address)
            assert got == reference
        finally:
            # Drain: release happens after the verify pass, so after
            # shutdown the counter is final.
            server.shutdown(drain=True, timeout=30.0)
        assert self._verify_totals(server) == {"match": 1.0}

    def test_detached_session_drops_spool(self, tmp_path, traces):
        """A client that vanishes mid-stream must not leave the spool
        behind or trigger a verification pass."""
        import socket as socket_mod

        from repro.service import protocol

        server = AnalysisServer(
            socket_path=str(tmp_path / "repro.sock"),
            workers=1,
            finish_shards=1,
        )
        server.start()
        try:
            path, _ = traces[("T2", "hwlc")]
            data = path.read_bytes()
            conn = socket_mod.socket(socket_mod.AF_UNIX)
            conn.connect(server.address)
            try:
                protocol.send_json(conn, protocol.HELLO, {
                    "trace": "drop-test", "config": "hwlc",
                })
                protocol.FrameReader(conn).read()  # WELCOME
                protocol.send_frame(conn, protocol.DATA, data[:4096])
            finally:
                conn.close()  # vanish without FINISH
        finally:
            server.shutdown(drain=True, timeout=30.0)
        assert self._verify_totals(server) == {}
