"""Integration tests for the sharded (multi-process) analysis service.

The contracts under test are the sharding PR's acceptance criteria:

* **routing** is consistent hashing: the same session id maps to the
  same worker slot in every process and run, and resizing the fleet
  remaps only ≈1/N of the id space;
* every sharded report is **byte-identical** to its offline (and
  single-process) twin, over both transports — unix sockets with
  SCM_RIGHTS connection handover and TCP with per-worker REDIRECT;
* a worker killed with ``SIGKILL`` mid-session is **restarted by the
  supervisor** and the session resumes from its checkpoint on the
  replacement, report still byte-identical;
* ``STAT`` merges every worker's metrics into one view, with
  ``--per-worker`` exposing the unmerged per-process snapshots;
* restarting ``repro serve`` on the same endpoint never races the old
  instance's drain (the listener is released *before* draining).

Worker processes are real subprocesses; tests that spawn them are
kept few and each owns its server's lifecycle.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time

import pytest

from repro.service import (
    AnalysisClient,
    AnalysisServer,
    HashRing,
    ShardedAnalysisServer,
    fetch_report,
)

from tests.service.conftest import CASES


def _metric_sum(snapshot: dict, name: str) -> float:
    family = snapshot.get("metrics", {}).get(name)
    return sum(s["value"] for s in family["samples"]) if family else 0.0


def _wait_until(cond, timeout: float = 15.0, interval: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cond():
            return True
        time.sleep(interval)
    return cond()


class TestHashRing:
    def test_same_id_same_slot_across_instances(self):
        """The mapping must be a pure function of (id, N) — no per-
        process hash salt — or resumes would miss their checkpoints."""
        ids = [f"s{i:04d}" for i in range(500)]
        a, b = HashRing(4), HashRing(4)
        assert [a.slot(i) for i in ids] == [b.slot(i) for i in ids]

    def test_all_slots_reachable_and_roughly_balanced(self):
        ring = HashRing(4)
        counts = [0, 0, 0, 0]
        for i in range(2000):
            counts[ring.slot(f"s{i:04d}")] += 1
        assert all(c > 0 for c in counts)
        # Virtual nodes keep the shares near 1/N; allow generous slack.
        assert max(counts) < 2 * min(counts) + 200

    def test_resize_remaps_about_one_over_n(self):
        """Growing N→N+1 must move ≈1/(N+1) of ids, not reshuffle the
        world — that is the 'consistent' in consistent hashing."""
        ids = [f"s{i:04d}" for i in range(2000)]
        for n in (2, 4):
            before = HashRing(n)
            after = HashRing(n + 1)
            moved = sum(
                1 for i in ids if before.slot(i) != after.slot(i)
            ) / len(ids)
            ideal = 1 / (n + 1)
            assert moved <= 2.5 * ideal, (n, moved)
            assert moved >= 0.25 * ideal, (n, moved)

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, replicas=0)


class TestShardedUnix:
    def test_concurrent_sessions_byte_identical_and_merged_stats(
        self, tmp_path, traces
    ):
        """Three sessions land on two workers via SCM_RIGHTS handover;
        every report equals its offline twin, and the acceptor's STAT
        merge accounts for all of them."""
        server = ShardedAnalysisServer(
            socket_path=str(tmp_path / "shard.sock"), workers=2, threads=1
        )
        server.start()
        try:
            results: dict[str, bytes] = {}
            errors: list[Exception] = []

            def one(case_id: str) -> None:
                try:
                    results[case_id] = fetch_report(
                        traces[(case_id, "hwlc+dr")][0],
                        "hwlc+dr",
                        socket_path=server.address,
                        chunk_bytes=1024,
                    )
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=one, args=(c,)) for c in CASES
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not errors
            for case_id in CASES:
                assert results[case_id] == traces[(case_id, "hwlc+dr")][1]

            merged = server.stats_payload()
            assert _metric_sum(merged, "repro_service_routed_sessions_total") == 3
            assert _metric_sum(merged, "repro_service_sessions_total") == 3
            assert _metric_sum(merged, "repro_service_reports_total") == 3
            assert _metric_sum(merged, "repro_service_workers") == 2

            per = server.stats_payload(per_worker=True)
            assert sorted(per["workers"]) == ["w0", "w1"]
            # The merge really is the sum of the parts.
            assert _metric_sum(per["merged"], "repro_service_sessions_total") == sum(
                _metric_sum(snap, "repro_service_sessions_total")
                for snap in per["workers"].values()
            )
        finally:
            server.shutdown(drain=True, timeout=30.0)

    def test_stats_over_the_wire_per_worker(self, tmp_path, traces):
        server = ShardedAnalysisServer(
            socket_path=str(tmp_path / "shard.sock"), workers=2, threads=1
        )
        server.start()
        try:
            path, reference = traces[("T1", "hwlc+dr")]
            assert fetch_report(path, socket_path=server.address) == reference
            with AnalysisClient(socket_path=server.address) as client:
                merged = client.stats()
                per = client.stats(per_worker=True)
            assert _metric_sum(merged, "repro_service_sessions_total") == 1
            assert sorted(per["workers"]) == ["w0", "w1"]
            assert _metric_sum(per["merged"], "repro_service_sessions_total") == 1
        finally:
            server.shutdown(drain=True, timeout=30.0)


class TestShardedTcp:
    def test_redirect_roundtrip_byte_identical(self, traces):
        """TCP handover: the acceptor answers HELLO with REDIRECT to
        the owning worker's port; the client follows it transparently
        and the report is still byte-identical."""
        server = ShardedAnalysisServer(
            host="127.0.0.1", port=0, workers=2, threads=1
        )
        server.start()
        host, port = server.address
        try:
            path, reference = traces[("T2", "hwlc+dr")]
            with AnalysisClient(
                host=host, port=port, chunk_bytes=1024
            ) as client:
                welcome = client.hello("hwlc+dr")
                assert client.redirected_to is not None
                assert client.redirected_to[1] != port  # a worker's port
                session_id = welcome["session"]
                # The redirect sent us to the slot the ring owns.
                slot = server.ring.slot(session_id)
                assert client.redirected_to[1] == server._slots[slot].port
                client.stream_file(path)
                assert client.finish() == reference
            merged = server.stats_payload()
            assert _metric_sum(merged, "repro_service_redirects_total") == 1
        finally:
            server.shutdown(drain=True, timeout=30.0)


class TestWorkerFailover:
    def test_sigkilled_worker_restarts_and_session_resumes(
        self, tmp_path, traces
    ):
        """kill -9 a worker mid-session: the supervisor restarts the
        slot, the session re-routes to the replacement (same hash
        slot), restores from its checkpoint, and the final report is
        byte-identical to the uninterrupted run's."""
        path, reference = traces[("T2", "hwlc+dr")]
        data = path.read_bytes()
        server = ShardedAnalysisServer(
            socket_path=str(tmp_path / "shard.sock"),
            workers=2,
            threads=1,
            checkpoint_dir=str(tmp_path / "ckpt"),
            checkpoint_every=1,
        )
        server.start()
        client = AnalysisClient(socket_path=server.address, chunk_bytes=1024)
        try:
            client.hello("hwlc+dr")
            session_id = client.session_id
            slot = server.ring.slot(session_id)
            old_pid = server._slots[slot].proc.pid

            # Stream half the trace, give the worker a moment to
            # analyse and checkpoint it, then murder the worker.
            half = len(data) // 2
            pos = 0
            while pos < half:
                client.send(data[pos:pos + 1024])
                pos += 1024
            assert _wait_until(
                lambda: (tmp_path / "ckpt").exists()
                and any((tmp_path / "ckpt").iterdir())
            )
            os.kill(old_pid, signal.SIGKILL)
            client.close()

            # Supervisor notices and respawns the same slot.
            def restarted() -> bool:
                handle = server._slots[slot]
                return (
                    handle is not None
                    and not handle.dead
                    and handle.proc.pid != old_pid
                    and handle.proc.poll() is None
                )

            assert _wait_until(restarted), "supervisor never restarted slot"
            assert server._slots[slot].proc.pid != old_pid

            # Resume: routed by the same ring to the replacement, which
            # restores the checkpoint; report must match byte-for-byte.
            got = fetch_report(
                path,
                socket_path=server.address,
                session=session_id,
                chunk_bytes=1024,
            )
            assert got == reference
            merged = server.stats_payload()
            assert _metric_sum(
                merged, "repro_service_worker_restarts_total"
            ) >= 1
            assert _metric_sum(merged, "repro_service_sessions_resumed_total") == 1
        finally:
            client.close()
            server.shutdown(drain=True, timeout=30.0)


class TestShutdownOrder:
    def test_endpoint_released_before_drain(self, tmp_path, traces):
        """Satellite regression: ``shutdown(drain=True)`` must close
        *and unlink* the unix endpoint before draining sessions, so a
        restarted server can bind the same path immediately — and the
        old instance's drain must not unlink the new instance's socket
        out from under it afterwards."""
        path, reference = traces[("T1", "hwlc+dr")]
        sock_path = str(tmp_path / "same.sock")
        old = AnalysisServer(
            socket_path=sock_path, workers=1,
            queue_blocks=2, throttle=0.05,
        )
        old.start()
        client = AnalysisClient(socket_path=sock_path, chunk_bytes=2048)
        client.hello("hwlc+dr")
        client.stream_file(path)  # queued work makes the drain slow

        drainer = threading.Thread(
            target=lambda: old.shutdown(drain=True, timeout=30.0)
        )
        drainer.start()
        try:
            # The path frees up while the old server is still draining.
            assert _wait_until(lambda: not os.path.exists(sock_path), 10)
            assert drainer.is_alive(), "drain finished too fast to test the race"

            new = AnalysisServer(socket_path=sock_path, workers=1)
            new.start()
            try:
                drainer.join(timeout=30)
                assert not drainer.is_alive()
                # The old drain must not have unlinked the new socket.
                assert os.path.exists(sock_path)
                got = fetch_report(path, socket_path=sock_path)
                assert got == reference
            finally:
                new.shutdown(drain=True, timeout=10.0)
        finally:
            client.close()
            drainer.join(timeout=30)

    def test_sharded_shutdown_releases_endpoint_first(self, tmp_path):
        """The sharded acceptor honours the same contract: its unix
        path is gone as soon as shutdown begins, before workers are
        drained, so back-to-back restarts never race."""
        sock_path = str(tmp_path / "shard.sock")
        server = ShardedAnalysisServer(
            socket_path=sock_path, workers=1, threads=1
        )
        server.start()
        assert os.path.exists(sock_path)
        server.shutdown(drain=True, timeout=30.0)
        assert not os.path.exists(sock_path)
        # And a new instance binds the path cleanly.
        again = ShardedAnalysisServer(
            socket_path=sock_path, workers=1, threads=1
        )
        again.start()
        try:
            assert os.path.exists(sock_path)
        finally:
            again.shutdown(drain=True, timeout=30.0)


class TestCli:
    def test_client_stat_per_worker(self, tmp_path, traces, capsys):
        from repro.cli import main

        server = ShardedAnalysisServer(
            socket_path=str(tmp_path / "shard.sock"), workers=2, threads=1
        )
        server.start()
        try:
            path, reference = traces[("T1", "hwlc+dr")]
            assert fetch_report(path, socket_path=server.address) == reference
            assert main([
                "client", "stat", "--socket", server.address, "--per-worker",
            ]) == 0
            printed = capsys.readouterr().out
            assert "-- w0 --" in printed
            assert "-- w1 --" in printed
            assert "-- merged --" in printed
            assert "repro_service_sessions_total" in printed

            assert main([
                "client", "stat", "--socket", server.address,
                "--per-worker", "--json",
            ]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert sorted(payload["workers"]) == ["w0", "w1"]
        finally:
            server.shutdown(drain=True, timeout=30.0)

    def test_stats_per_worker_local_shape(self, capsys):
        """`repro stats --per-worker` on a local one-process run prints
        the lone w0 section next to the merged view (shape parity with
        `repro client stat --per-worker`)."""
        from repro.cli import main

        assert main(["stats", "T1", "--per-worker"]) == 0
        printed = capsys.readouterr().out
        assert "-- w0 (pid" in printed
        assert "-- merged --" in printed
