"""Tests for the SIP message model and wire parser."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import SipParseError
from repro.sip.message import Header, SipMessage
from repro.sip.parser import parse_message, serialize_message

INVITE_WIRE = (
    "INVITE sip:bob@biloxi.example.com SIP/2.0\r\n"
    "Via: SIP/2.0/UDP client.atlanta.example.com\r\n"
    "Max-Forwards: 70\r\n"
    "From: sip:alice@atlanta.example.com\r\n"
    "To: sip:bob@biloxi.example.com\r\n"
    "Call-ID: 3848276298220188511@atlanta\r\n"
    "CSeq: 1 INVITE\r\n"
    "Content-Length: 4\r\n"
    "\r\n"
    "v=0\n"
)


class TestParsing:
    def test_request_line(self):
        msg = parse_message(INVITE_WIRE)
        assert msg.is_request
        assert msg.method == "INVITE"
        assert msg.request_uri == "sip:bob@biloxi.example.com"

    def test_headers(self):
        msg = parse_message(INVITE_WIRE)
        assert msg.header("Via") == "SIP/2.0/UDP client.atlanta.example.com"
        assert msg.header("call-id") == "3848276298220188511@atlanta"  # case-insensitive
        assert msg.header("Nope") is None

    def test_body_with_content_length(self):
        msg = parse_message(INVITE_WIRE)
        assert msg.body == "v=0\n"

    def test_response_line(self):
        msg = parse_message("SIP/2.0 200 OK\r\nVia: x\r\n\r\n")
        assert msg.is_response
        assert msg.status == 200
        assert msg.reason == "OK"

    def test_folded_header(self):
        wire = (
            "OPTIONS sip:a SIP/2.0\r\nVia: first\r\n part2\r\nFrom: f\r\nTo: t\r\n"
            "Call-ID: c\r\nCSeq: 1 OPTIONS\r\n\r\n"
        )
        msg = parse_message(wire)
        assert msg.header("Via") == "first part2"

    @pytest.mark.parametrize(
        "wire, match",
        [
            ("", "empty"),
            ("BROKEN\r\n\r\n", "start line"),
            ("SIP/2.0 xx OK\r\n\r\n", "status code"),
            ("SIP/2.0 99 Low\r\n\r\n", "out of range"),
            ("INVITE sip:x HTTP/1.1\r\n\r\n", "version"),
            ("invite sip:x SIP/2.0\r\nVia: v\r\n\r\n", "method"),
            ("OPTIONS sip:a SIP/2.0\r\nNoColonHere\r\n\r\n", "header line"),
            ("OPTIONS sip:a SIP/2.0\r\n: empty\r\n\r\n", "header name"),
        ],
    )
    def test_malformed_inputs(self, wire, match):
        with pytest.raises(SipParseError, match=match):
            parse_message(wire)

    def test_missing_mandatory_header(self):
        wire = "INVITE sip:x SIP/2.0\r\nVia: v\r\nFrom: f\r\nTo: t\r\nCSeq: 1 INVITE\r\n\r\n"
        with pytest.raises(SipParseError, match="Call-ID"):
            parse_message(wire)

    def test_cseq_method_mismatch(self):
        wire = (
            "INVITE sip:x SIP/2.0\r\nVia: v\r\nFrom: f\r\nTo: t\r\n"
            "Call-ID: c\r\nCSeq: 1 BYE\r\n\r\n"
        )
        with pytest.raises(SipParseError, match="CSeq method"):
            parse_message(wire)

    def test_content_length_mismatch(self):
        wire = (
            "INVITE sip:x SIP/2.0\r\nVia: v\r\nFrom: f\r\nTo: t\r\n"
            "Call-ID: c\r\nCSeq: 1 INVITE\r\nContent-Length: 99\r\n\r\nshort"
        )
        with pytest.raises(SipParseError, match="Content-Length"):
            parse_message(wire)


class TestRoundTrip:
    def test_serialize_parse_roundtrip(self):
        msg = parse_message(INVITE_WIRE)
        again = parse_message(serialize_message(msg))
        assert again.method == msg.method
        assert again.headers == msg.headers
        assert again.body == msg.body

    def test_request_constructor(self):
        msg = SipMessage.request(
            "REGISTER",
            "sip:example.com",
            call_id="c1",
            cseq=2,
            from_uri="sip:alice@example.com",
            to_uri="sip:alice@example.com",
        )
        wire = serialize_message(msg)
        parsed = parse_message(wire)
        assert parsed.method == "REGISTER"
        assert parsed.cseq == (2, "REGISTER")

    def test_response_to_echoes_dialog_headers(self):
        req = parse_message(INVITE_WIRE)
        resp = SipMessage.response_to(req, 180)
        assert resp.status == 180
        assert resp.reason == "Ringing"
        assert resp.call_id == req.call_id
        assert resp.header("CSeq") == req.header("CSeq")


class TestAccessors:
    def test_cseq(self):
        msg = parse_message(INVITE_WIRE)
        assert msg.cseq == (1, "INVITE")

    def test_domain_extraction(self):
        msg = parse_message(INVITE_WIRE)
        assert msg.domain == "biloxi.example.com"

    def test_domain_with_params(self):
        msg = SipMessage(method="OPTIONS", request_uri="sip:bob@host.net;transport=udp")
        assert msg.domain == "host.net"

    def test_transaction_key_folds_ack_cancel(self):
        base = dict(
            uri="sip:x", call_id="c9", from_uri="f", to_uri="t"
        )
        invite = SipMessage.request("INVITE", base["uri"], call_id="c9", cseq=1, from_uri="f", to_uri="t")
        ack = SipMessage.request("ACK", base["uri"], call_id="c9", cseq=1, from_uri="f", to_uri="t")
        cancel = SipMessage.request("CANCEL", base["uri"], call_id="c9", cseq=1, from_uri="f", to_uri="t")
        assert invite.transaction_key == ack.transaction_key == cancel.transaction_key

    def test_max_forwards_default_and_bad(self):
        msg = SipMessage(method="OPTIONS", headers=[Header("Max-Forwards", "junk")])
        assert msg.max_forwards == 70
        msg2 = SipMessage(method="OPTIONS", headers=[Header("Max-Forwards", "0")])
        assert msg2.max_forwards == 0

    def test_with_header_prepends(self):
        msg = SipMessage(method="OPTIONS", headers=[Header("Via", "old")])
        new = msg.with_header("Via", "new")
        assert new.all_headers("Via") == ["new", "old"]
        assert msg.all_headers("Via") == ["old"]  # original untouched

    def test_without_top_header(self):
        msg = SipMessage(
            status=200, reason="OK", headers=[Header("Via", "a"), Header("Via", "b")]
        )
        popped = msg.without_top_header("via")
        assert popped.all_headers("Via") == ["b"]


@given(
    st.sampled_from(["INVITE", "BYE", "OPTIONS", "REGISTER"]),
    st.integers(1, 99),
    st.text(alphabet="abcdefg0123456789", min_size=1, max_size=12),
)
def test_property_request_roundtrip(method, cseq, call_id):
    msg = SipMessage.request(
        method,
        "sip:user@example.com",
        call_id=call_id,
        cseq=cseq,
        from_uri="sip:a@x.com",
        to_uri="sip:b@y.com",
    )
    parsed = parse_message(serialize_message(msg))
    assert parsed.method == method
    assert parsed.cseq == (cseq, method)
    assert parsed.call_id == call_id
