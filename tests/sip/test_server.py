"""Integration tests for the SIP proxy server.

Functional correctness first (the proxy actually proxies), then the
detector-facing behaviours: each §4.1 bug class is reported when
enabled and silent when fixed, and each §4.2 FP class appears under the
configuration the paper attributes it to.
"""

from __future__ import annotations

import pytest

from repro.detectors import DjitDetector, HelgrindConfig, HelgrindDetector
from repro.detectors.classify import classify_report
from repro.oracle import GroundTruth, WarningCategory
from repro.runtime import VM, RandomScheduler
from repro.sip import ProxyConfig, SipProxy
from repro.sip.bugs import ALL_BUG_IDS, BUGS, EVALUATION_BUGS, LATENT_BUG_IDS
from repro.sip.workload import _Builder, scenario_calls, evaluation_cases


def run_proxy(wires, *, config=None, detector=None, seed=42, truth=None, step_limit=8_000_000):
    proxy = SipProxy(config or ProxyConfig(), truth=truth)
    detectors = (detector,) if detector is not None else ()
    vm = VM(
        detectors=detectors,
        scheduler=RandomScheduler(seed),
        step_limit=step_limit,
    )
    result = vm.run(proxy.main, wires)
    return result, proxy


class TestFunctional:
    def test_single_call_lifecycle(self):
        wires = scenario_calls(seed=3, n_calls=1)
        result, _ = run_proxy(wires, config=ProxyConfig.fixed())
        statuses = [r.status for r in result.responses]
        assert statuses.count(100) == 1  # Trying
        assert statuses.count(180) == 1  # Ringing
        assert statuses.count(200) == 2  # final for INVITE + BYE
        assert result.handled == 3

    def test_all_transactions_cleaned_up(self):
        wires = scenario_calls(seed=3, n_calls=4)
        result, proxy = run_proxy(wires, config=ProxyConfig.fixed())
        assert proxy._txn_objects == {}  # all dialogs torn down

    def test_register_then_invite_finds_binding(self):
        b = _Builder(5)
        user = "sip:bob@example.com"
        reg = b.register(user)
        call = b.call(caller="sip:alice@example.com", callee=user)
        wires = b.weave([reg]) + b.weave([call])
        result, proxy = run_proxy(wires, config=ProxyConfig.fixed())
        assert any(r.status == 200 for r in result.responses)
        assert proxy._bindings  # binding retained

    def test_options_answered_with_allow(self):
        b = _Builder(6)
        wires = b.weave([b.options()])
        result, _ = run_proxy(wires, config=ProxyConfig.fixed())
        assert result.responses[0].status == 200
        assert "INVITE" in (result.responses[0].header("Allow") or "")

    def test_bye_without_dialog_gets_481(self):
        b = _Builder(7)
        call = b.call()
        bye_only = [w for w in b.weave([call]) if "BYE" in w.split("\r\n")[0]]
        result, _ = run_proxy(bye_only, config=ProxyConfig.fixed())
        assert result.responses[0].status == 481

    def test_unknown_method_gets_405(self):
        wire = (
            "PUBLISH sip:a@example.com SIP/2.0\r\nVia: v\r\nFrom: f\r\nTo: t\r\n"
            "Call-ID: c77\r\nCSeq: 1 PUBLISH\r\n\r\n"
        )
        result, _ = run_proxy([wire], config=ProxyConfig.fixed())
        assert result.responses[0].status == 405

    def test_max_forwards_exhausted_gets_483(self):
        from repro.sip.message import SipMessage
        from repro.sip.parser import serialize_message

        msg = SipMessage.request(
            "OPTIONS", "sip:example.com", call_id="c", cseq=1,
            from_uri="f", to_uri="t", max_forwards=0,
        )
        result, _ = run_proxy([serialize_message(msg)], config=ProxyConfig.fixed())
        assert result.responses[0].status == 483

    def test_malformed_message_counted(self):
        result, _ = run_proxy(["NOT SIP AT ALL\r\n\r\n"], config=ProxyConfig.fixed())
        assert result.parse_errors
        assert result.handled == 0

    def test_stats_track_methods(self):
        wires = scenario_calls(seed=3, n_calls=2)
        result, _ = run_proxy(wires, config=ProxyConfig.fixed())
        assert result.stats["INVITE"] == 2
        assert result.stats["BYE"] == 2
        assert result.stats["total"] == 6

    def test_fixed_proxy_has_no_failures(self):
        wires = scenario_calls(seed=3, n_calls=3)
        result, _ = run_proxy(wires, config=ProxyConfig.fixed())
        real_failures = [f for f in result.failures if "timeout" not in f]
        assert real_failures == []

    def test_thread_pool_mode_same_responses(self):
        wires = scenario_calls(seed=3, n_calls=3)
        per_req, _ = run_proxy(wires, config=ProxyConfig.fixed())
        pooled, _ = run_proxy(
            wires, config=ProxyConfig.fixed(mode="thread-pool", pool_size=3)
        )
        assert sorted(r.status for r in per_req.responses) == sorted(
            r.status for r in pooled.responses
        )

    def test_config_validation(self):
        with pytest.raises(ValueError, match="dispatch mode"):
            ProxyConfig(mode="fibers")
        with pytest.raises(ValueError, match="unknown bug"):
            ProxyConfig(bugs=frozenset({"not-a-bug"}))


class TestDetectorFacing:
    def _classified(self, *, config, det_config, wires=None, seed=42):
        truth = GroundTruth()
        det = HelgrindDetector(det_config)
        wires = wires or evaluation_cases()[0].wires
        run_proxy(wires, config=config, detector=det, truth=truth, seed=seed)
        return classify_report(det.report, truth), det

    def test_fixed_and_instrumented_proxy_is_nearly_clean(self):
        """Fixed bugs + DR build + extended detector: the goal state.

        One residual false positive is faithful: the statistics block is
        a static structure, destroyed at shutdown *without* ``operator
        delete`` — the paper's instrumentation only annotates delete
        expressions, so its teardown writes still drain the candidate
        set (SHARED-MODIFIED never reverts, even after the join).
        """
        classified, det = self._classified(
            config=ProxyConfig.fixed(instrumented=True),
            det_config=HelgrindConfig.extended(),
        )
        assert classified.true_races == 0, det.report.format_full()
        assert classified.total <= 2
        for item in classified.items:
            assert item.category is WarningCategory.FP_DESTRUCTOR

    def test_buggy_proxy_reports_under_every_config(self):
        for det_config in (
            HelgrindConfig.original(),
            HelgrindConfig.hwlc(),
            HelgrindConfig.hwlc_dr(),
        ):
            classified, _ = self._classified(
                config=ProxyConfig(bugs=EVALUATION_BUGS), det_config=det_config
            )
            assert classified.true_races > 0, det_config.name

    def test_monotone_across_configs(self):
        counts = []
        for name, det_config in (
            ("original", HelgrindConfig.original()),
            ("hwlc", HelgrindConfig.hwlc()),
            ("hwlc_dr", HelgrindConfig.hwlc_dr()),
        ):
            truth = GroundTruth()
            det = HelgrindDetector(det_config)
            run_proxy(
                evaluation_cases()[0].wires,
                config=ProxyConfig(
                    bugs=EVALUATION_BUGS, instrumented=(name == "hwlc_dr")
                ),
                detector=det,
                truth=truth,
            )
            counts.append(det.report.location_count)
        assert counts[0] > counts[1] > counts[2]

    def test_no_unknown_warnings(self):
        """Every warning the detector raises is explained by the oracle
        (claim or destructor-stack heuristic) — the classification is
        complete, not best-effort."""
        classified, det = self._classified(
            config=ProxyConfig(bugs=EVALUATION_BUGS),
            det_config=HelgrindConfig.original(),
        )
        assert classified.count(WarningCategory.UNKNOWN) == 0, (
            classified.format_summary()
        )

    def test_destructor_fp_class_dominates_removals(self):
        """Figure 5's proportions: DR removes more than HWLC does."""
        base, _ = self._classified(
            config=ProxyConfig(bugs=EVALUATION_BUGS),
            det_config=HelgrindConfig.original(),
        )
        assert base.count(WarningCategory.FP_DESTRUCTOR) > base.count(
            WarningCategory.FP_HW_LOCK
        )


class TestBugToggles:
    """Each §4.1 bug is reported when enabled, silent when fixed (E9)."""

    def _bug_found(self, bug_id, *, wires=None, seed=42):
        truth = GroundTruth()
        det = HelgrindDetector(HelgrindConfig.hwlc_dr())
        config = ProxyConfig(bugs=frozenset({bug_id}), instrumented=True)
        wires = wires or evaluation_cases()[3].wires
        run_proxy(wires, config=config, detector=det, truth=truth, seed=seed)
        classified = classify_report(det.report, truth)
        return classified.bug_ids_found(), classified

    @pytest.mark.parametrize(
        "bug_id",
        # Latent bugs are *designed* never to fire live — the predictive
        # tier's tests cover them (tests/detectors/test_predict.py).
        sorted(ALL_BUG_IDS - {"init-order"} - LATENT_BUG_IDS),
    )
    def test_bug_detected_when_enabled(self, bug_id):
        found, classified = self._bug_found(bug_id)
        assert bug_id in found, classified.format_summary()

    def test_init_order_detected_on_some_schedule(self):
        """§4.1.1: 'the fault would not occur often enough to attract
        attention' — a seed sweep finds it."""
        hits = 0
        for seed in range(6):
            found, _ = self._bug_found("init-order", seed=seed)
            hits += "init-order" in found
        assert hits >= 1

    def test_fixed_proxy_reports_no_true_races(self):
        truth = GroundTruth()
        det = HelgrindDetector(HelgrindConfig.hwlc_dr())
        run_proxy(
            evaluation_cases()[3].wires,
            config=ProxyConfig.fixed(instrumented=True),
            detector=det,
            truth=truth,
        )
        classified = classify_report(det.report, truth)
        assert classified.true_races == 0

    def test_bug_registry_metadata(self):
        assert set(BUGS) == ALL_BUG_IDS
        for bug in BUGS.values():
            assert bug.title and bug.description and bug.fix and bug.paper_ref


class TestThreadPoolFigure11:
    def test_pool_mode_produces_ownership_fps(self):
        """Figure 11: job-queue hand-offs confuse the lock-set detector."""
        truth = GroundTruth()
        det = HelgrindDetector(HelgrindConfig.hwlc_dr())
        run_proxy(
            scenario_calls(seed=3, n_calls=4),
            config=ProxyConfig.fixed(mode="thread-pool", instrumented=True),
            detector=det,
            truth=truth,
        )
        classified = classify_report(det.report, truth)
        assert classified.count(WarningCategory.FP_OWNERSHIP) > 0

    def test_extended_config_clears_ownership_fps(self):
        """The §5 future-work fix: queue-aware happens-before."""
        truth = GroundTruth()
        det = HelgrindDetector(HelgrindConfig.extended())
        run_proxy(
            scenario_calls(seed=3, n_calls=4),
            config=ProxyConfig.fixed(mode="thread-pool", instrumented=True),
            detector=det,
            truth=truth,
        )
        classified = classify_report(det.report, truth)
        assert classified.count(WarningCategory.FP_OWNERSHIP) == 0

    def test_djit_unaffected_by_pool_pattern(self):
        """§2.2's baseline sees the queue ordering natively."""
        truth = GroundTruth()
        det = DjitDetector()
        run_proxy(
            scenario_calls(seed=3, n_calls=4),
            config=ProxyConfig.fixed(mode="thread-pool", instrumented=True),
            detector=det,
            truth=truth,
        )
        classified = classify_report(det.report, truth)
        assert classified.count(WarningCategory.FP_OWNERSHIP) == 0


class TestTransactionReaper:
    """Abandoned dialogs are expired by the reaper (RFC 3261 timeouts)."""

    def _abandoned_workload(self):
        b = _Builder(21)
        scenarios = [b.abandoned_call() for _ in range(3)]
        scenarios += [b.call() for _ in range(2)]
        return b.weave(scenarios)

    def test_without_reaper_abandoned_transactions_leak(self):
        wires = self._abandoned_workload()
        _, proxy = run_proxy(wires, config=ProxyConfig.fixed())
        assert len(proxy._txn_objects) == 3  # the lost INVITEs linger

    def test_reaper_cleans_up_abandoned_transactions(self):
        wires = self._abandoned_workload()
        result, proxy = run_proxy(
            wires, config=ProxyConfig.fixed(reaper_rounds=4)
        )
        assert proxy._txn_objects == {}
        # The completed dialogs were unaffected (normal responses sent).
        assert sum(1 for r in result.responses if r.status == 200) >= 2

    def test_reaper_memory_is_released(self):
        wires = self._abandoned_workload()
        _, proxy = run_proxy(
            wires, config=ProxyConfig.fixed(reaper_rounds=4)
        )
        # FORCE_NEW allocator: destroyed transactions are VM-freed.
        import gc  # noqa: F401 - host gc irrelevant; check guest memory

    def test_reaper_timeout_path_reaches_terminated(self):
        """The FSM's timeout transitions are genuinely exercised."""
        wires = self._abandoned_workload()
        _, proxy = run_proxy(wires, config=ProxyConfig.fixed(reaper_rounds=4))
        # nothing left to read state from (all destroyed) — the previous
        # assertions prove termination; here we check idempotence:
        _, proxy2 = run_proxy(wires, config=ProxyConfig.fixed(reaper_rounds=8))
        assert proxy2._txn_objects == {}

    def test_reaper_produces_no_unexplained_warnings(self):
        """The reaper plays by the locking rules: no new FP classes."""
        truth = GroundTruth()
        det = HelgrindDetector(HelgrindConfig.hwlc_dr())
        run_proxy(
            self._abandoned_workload(),
            config=ProxyConfig(
                bugs=frozenset(), instrumented=True, reaper_rounds=4
            ),
            detector=det,
            truth=truth,
        )
        classified = classify_report(det.report, truth)
        from repro.oracle import WarningCategory

        assert classified.count(WarningCategory.UNKNOWN) == 0
        assert classified.true_races == 0


class TestProxyResultHelpers:
    def test_responses_for_filters_by_call_id(self):
        wires = scenario_calls(seed=3, n_calls=2)
        result, _ = run_proxy(wires, config=ProxyConfig.fixed())
        from repro.sip.parser import parse_message

        call_ids = {parse_message(w).call_id for w in wires}
        for call_id in call_ids:
            subset = result.responses_for(call_id)
            assert subset
            assert all(r.call_id == call_id for r in subset)
        assert result.responses_for("no-such-dialog") == []
