"""Tests for the SIP transaction state machines and object hierarchy."""

from __future__ import annotations

import pytest

from repro.sip.transaction import (
    INVITE_TRANSACTION,
    NON_INVITE_TRANSACTION,
    OWNED_PARTS,
    PART_CLASSES,
    REGISTRATION_BINDING,
    TransactionContext,
    TransactionError,
    TransactionState as S,
    build_transaction_classes,
    invite_event,
    non_invite_event,
    transaction_class_for,
)


class TestInviteMachine:
    def test_happy_path(self):
        state = S.TRYING
        state, status = invite_event(state, "invite")
        assert (state, status) == (S.PROCEEDING, 100)
        state, status = invite_event(state, "provisional")
        assert (state, status) == (S.PROCEEDING, 180)
        state, status = invite_event(state, "final")
        assert (state, status) == (S.COMPLETED, 200)
        state, status = invite_event(state, "ack")
        assert (state, status) == (S.CONFIRMED, None)
        state, status = invite_event(state, "bye")
        assert state is S.TERMINATED

    def test_retransmission_resends(self):
        state, status = invite_event(S.PROCEEDING, "retransmit")
        assert (state, status) == (S.PROCEEDING, 100)
        state, status = invite_event(S.COMPLETED, "retransmit")
        assert (state, status) == (S.COMPLETED, 200)

    def test_cancel(self):
        state, status = invite_event(S.PROCEEDING, "cancel")
        assert (state, status) == (S.COMPLETED, 487)

    def test_timeouts(self):
        assert invite_event(S.PROCEEDING, "timeout") == (S.TERMINATED, 408)
        assert invite_event(S.COMPLETED, "timeout") == (S.TERMINATED, None)
        assert invite_event(S.CONFIRMED, "timeout") == (S.TERMINATED, None)

    def test_duplicate_ack_absorbed(self):
        assert invite_event(S.CONFIRMED, "ack") == (S.CONFIRMED, None)

    @pytest.mark.parametrize(
        "state, event",
        [
            (S.TRYING, "ack"),
            (S.PROCEEDING, "ack"),
            (S.COMPLETED, "invite"),
            (S.CONFIRMED, "final"),
            (S.TERMINATED, "invite"),
        ],
    )
    def test_protocol_violations_raise(self, state, event):
        with pytest.raises(TransactionError):
            invite_event(state, event)


class TestNonInviteMachine:
    def test_happy_path(self):
        state, status = non_invite_event(S.TRYING, "request")
        assert (state, status) == (S.PROCEEDING, None)
        state, status = non_invite_event(state, "final")
        assert (state, status) == (S.COMPLETED, 200)

    def test_retransmissions(self):
        assert non_invite_event(S.PROCEEDING, "retransmit") == (S.PROCEEDING, None)
        assert non_invite_event(S.COMPLETED, "retransmit") == (S.COMPLETED, 200)

    def test_timeout(self):
        assert non_invite_event(S.PROCEEDING, "timeout") == (S.TERMINATED, 408)

    def test_violations_raise(self):
        with pytest.raises(TransactionError):
            non_invite_event(S.TRYING, "final")
        with pytest.raises(TransactionError):
            non_invite_event(S.TERMINATED, "request")


class TestHierarchy:
    def test_three_level_transaction_chain(self):
        names = [c.name for c in INVITE_TRANSACTION.mro()]
        assert names == ["PoolObject", "SipTransaction", "InviteTransaction"]
        names = [c.name for c in NON_INVITE_TRANSACTION.mro()]
        assert names == ["PoolObject", "SipTransaction", "NonInviteTransaction"]

    def test_binding_chain(self):
        names = [c.name for c in REGISTRATION_BINDING.mro()]
        assert names == ["LocationRecord", "AorRecord", "RegistrationBinding"]

    def test_owned_parts_are_derived_classes(self):
        """Every owned part must be derived (the §4.2.1 precondition)."""
        for field in OWNED_PARTS:
            cls = PART_CLASSES[field]
            assert cls.is_derived(), cls.name
            assert len(cls.mro()) == 3, cls.name

    def test_owned_part_fields_exist_on_transaction(self):
        for field in OWNED_PARTS:
            INVITE_TRANSACTION.field_offset(field)  # no KeyError

    def test_class_for_method(self):
        assert transaction_class_for("INVITE").name == "InviteTransaction"
        assert transaction_class_for("REGISTER").name == "NonInviteTransaction"
        assert transaction_class_for("OPTIONS").name == "NonInviteTransaction"

    def test_custom_class_table(self):
        classes = build_transaction_classes(
            TransactionContext(allocator=None, annotate=True)
        )
        assert transaction_class_for("INVITE", classes) is classes["INVITE"]
        assert set(classes) == {"INVITE", "default", "binding"}

    def test_contexts_produce_independent_classes(self):
        a = build_transaction_classes(TransactionContext(allocator=None, annotate=False))
        b = build_transaction_classes(TransactionContext(allocator=None, annotate=True))
        assert a["INVITE"] is not b["INVITE"]


class TestDtorCascade:
    def test_transaction_dtor_deletes_parts_and_nulls_fields(self):
        from repro.cxx import CxxAllocator, delete_object, new_object
        from repro.cxx.allocator import AllocStrategy
        from repro.runtime import VM
        from repro.runtime.events import ClientRequest
        from repro.runtime.trace import TraceRecorder

        recorder = TraceRecorder()

        def prog(api):
            alloc = CxxAllocator(api, strategy=AllocStrategy.FORCE_NEW)
            classes = build_transaction_classes(
                TransactionContext(allocator=alloc, annotate=True)
            )
            parts = {
                f: new_object(api, PART_CLASSES[f], alloc) for f in OWNED_PARTS
            }
            init = {"key": 0, "state": "trying", "cseq": 1, "events": 0,
                    "branch": "", "refs": 0, "zombie": 0}
            init.update(parts)
            txn = new_object(api, classes["INVITE"], alloc, init=init)
            delete_object(api, txn, alloc, annotate=True)
            return alloc.stats()

        vm = VM(detectors=(recorder,))
        stats = vm.run(prog)
        # Every part was really deleted: all direct allocations freed.
        assert not vm.memory.live_blocks()
        # One HG_DESTRUCT per delete site: the txn + each owned part.
        requests = [e for e in recorder.events if isinstance(e, ClientRequest)]
        assert len([r for r in requests if r.request == "hg_destruct"]) == 1 + len(
            OWNED_PARTS
        )
