"""Tests for the SIPp-style workload generator."""

from __future__ import annotations

from collections import Counter

from repro.sip.parser import parse_message
from repro.sip.workload import TestCase, _Builder, scenario_calls, evaluation_cases


class TestBuilders:
    def test_call_scenario_order(self):
        b = _Builder(1)
        s = b.call(with_info=True)
        methods = [m.method for m in s.messages]
        assert methods == ["INVITE", "ACK", "INFO", "BYE"]

    def test_cancelled_call(self):
        b = _Builder(1)
        s = b.call(cancelled=True)
        assert [m.method for m in s.messages] == ["INVITE", "CANCEL"]

    def test_retransmit_duplicates_invite(self):
        b = _Builder(1)
        s = b.call(retransmit=True)
        assert [m.method for m in s.messages][:2] == ["INVITE", "INVITE"]

    def test_register_renewal_bumps_cseq(self):
        b = _Builder(1)
        s = b.register(renew=True)
        assert [m.method for m in s.messages] == ["REGISTER", "REGISTER"]
        assert [m.cseq[0] for m in s.messages] == [1, 2]

    def test_presence_pairs_subscribe_notify(self):
        b = _Builder(1)
        s = b.presence()
        assert [m.method for m in s.messages] == ["SUBSCRIBE", "NOTIFY"]
        assert len({m.call_id for m in s.messages}) == 1

    def test_unique_call_ids(self):
        b = _Builder(1)
        ids = {b.call().call_id for _ in range(50)}
        assert len(ids) == 50


class TestWeave:
    def test_preserves_dialog_order(self):
        wires = scenario_calls(seed=5, n_calls=8)
        position: dict[str, list[str]] = {}
        for wire in wires:
            msg = parse_message(wire)
            position.setdefault(msg.call_id, []).append(msg.method)
        for methods in position.values():
            assert methods == ["INVITE", "ACK", "BYE"]

    def test_interleaves_dialogs(self):
        """At least two dialogs overlap in the arrival stream."""
        wires = scenario_calls(seed=5, n_calls=8)
        call_ids = [parse_message(w).call_id for w in wires]
        # If dialogs never interleaved, the stream would be sorted in
        # contiguous blocks of 3.
        blocks = [call_ids[i : i + 3] for i in range(0, len(call_ids), 3)]
        assert any(len(set(b)) > 1 for b in blocks)

    def test_deterministic_per_seed(self):
        assert scenario_calls(seed=9, n_calls=4) == scenario_calls(seed=9, n_calls=4)
        assert scenario_calls(seed=9, n_calls=4) != scenario_calls(seed=10, n_calls=4)


class TestTestCases:
    def test_eight_cases_t1_to_t8(self):
        cases = evaluation_cases()
        assert [c.case_id for c in cases] == [f"T{i}" for i in range(1, 9)]

    def test_all_wires_parse(self):
        for case in evaluation_cases():
            for wire in case.wires:
                parse_message(wire)  # raises on malformed output

    def test_deterministic(self):
        a = evaluation_cases(seed=7)
        b = evaluation_cases(seed=7)
        assert [c.wires for c in a] == [c.wires for c in b]

    def test_cases_have_distinct_profiles(self):
        profiles = []
        for case in evaluation_cases():
            mix = Counter(parse_message(w).method for w in case.wires)
            profiles.append((case.case_id, tuple(sorted(mix.items()))))
        assert len({p for _, p in profiles}) == len(profiles)

    def test_volumes_reasonable(self):
        for case in evaluation_cases():
            assert 5 <= case.message_count <= 80, case

    def test_t5_contains_retransmissions(self):
        t5 = evaluation_cases()[4]
        per_dialog = Counter()
        for wire in t5.wires:
            msg = parse_message(wire)
            per_dialog[(msg.call_id, msg.method)] += 1
        assert any(
            count > 1 for (cid, m), count in per_dialog.items() if m == "INVITE"
        )

    def test_repr(self):
        case = evaluation_cases()[0]
        assert "T1" in repr(case)


class TestAbandonedCalls:
    def test_abandoned_call_is_invite_only(self):
        b = _Builder(4)
        s = b.abandoned_call()
        assert [m.method for m in s.messages] == ["INVITE"]

    def test_abandoned_calls_have_unique_ids(self):
        b = _Builder(4)
        ids = {b.abandoned_call().call_id for _ in range(10)}
        assert len(ids) == 10

    def test_weaves_with_normal_traffic(self):
        b = _Builder(4)
        wires = b.weave([b.abandoned_call(), b.call()])
        methods = [parse_message(w).method for w in wires]
        assert methods.count("INVITE") == 2
        assert methods.count("BYE") == 1
