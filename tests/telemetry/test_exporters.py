"""Unit tests for the Prometheus / JSON / console exporters."""

from __future__ import annotations

import json

from repro.telemetry.exporters import (
    prom_path_for,
    to_console,
    to_json,
    to_prometheus,
    write_metrics,
)
from repro.telemetry.metrics import MetricsRegistry


def _registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter(
        "repro_events_total", {"kind": "MemRead"}, help="Events by kind."
    ).inc(100)
    reg.counter("repro_events_total", {"kind": "MemWrite"}).inc(40)
    reg.gauge("repro_lockset_table_size", help="Interned sets.").set(12)
    reg.histogram("repro_batch_seconds", buckets=(0.001, 0.01)).observe(0.005)
    return reg


class TestPrometheus:
    def test_help_type_and_samples(self):
        text = to_prometheus(_registry().snapshot())
        assert "# HELP repro_events_total Events by kind." in text
        assert "# TYPE repro_events_total counter" in text
        assert 'repro_events_total{kind="MemRead"} 100' in text
        assert "# TYPE repro_lockset_table_size gauge" in text
        assert "repro_lockset_table_size 12" in text

    def test_histogram_cumulative_le_form(self):
        text = to_prometheus(_registry().snapshot())
        assert 'repro_batch_seconds_bucket{le="0.001"} 0' in text
        assert 'repro_batch_seconds_bucket{le="0.01"} 1' in text
        assert 'repro_batch_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_batch_seconds_sum 0.005" in text
        assert "repro_batch_seconds_count 1" in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("x_total", {"k": 'quote " back \\ nl\n'}).inc(1)
        text = to_prometheus(reg.snapshot())
        assert r"\"" in text and r"\\" in text and r"\n" in text
        assert "\n\n" not in text.rstrip("\n") + "\n"

    def test_deterministic(self):
        assert to_prometheus(_registry().snapshot()) == to_prometheus(
            _registry().snapshot()
        )


class TestJson:
    def test_round_trips(self):
        snap = _registry().snapshot()
        assert json.loads(to_json(snap)) == snap

    def test_byte_deterministic(self):
        assert to_json(_registry().snapshot()) == to_json(_registry().snapshot())


class TestConsole:
    def test_renders_curated_sections(self):
        reg = _registry()
        reg.counter("repro_vm_route_builds_total").inc(4)
        reg.counter("repro_vm_route_cache_hits_total").inc(996)
        reg.counter("repro_block_cache_hits_total", {"slot": "last"}).inc(50)
        reg.counter("repro_block_cache_hits_total", {"slot": "prev"}).inc(10)
        reg.counter("repro_block_cache_misses_total").inc(40)
        text = to_console(reg.snapshot())
        assert "events (140 total)" in text
        assert "MemRead" in text
        assert "99.6%" in text  # route-cache hit rate
        assert "60.0%" in text  # block-cache hit rate
        assert "12 interned sets" in text

    def test_tolerates_partial_snapshots(self):
        # A snapshot with only one family must still render.
        reg = MetricsRegistry()
        reg.counter("repro_events_total", {"kind": "Lock"}).inc(2)
        text = to_console(reg.snapshot())
        assert "events (2 total)" in text

    def test_tolerates_empty_snapshot(self):
        text = to_console(MetricsRegistry().snapshot())
        assert "caches" in text  # still prints the skeleton, no crash


class TestWriteMetrics:
    def test_writes_json_and_prom_twin(self, tmp_path):
        path = tmp_path / "m.json"
        twin = write_metrics(str(path), _registry().snapshot())
        assert twin == prom_path_for(str(path)) == str(path) + ".prom"
        doc = json.loads(path.read_text())
        assert doc["version"] == 1
        prom = (tmp_path / "m.json.prom").read_text()
        assert "# TYPE repro_events_total counter" in prom

    def test_write_is_atomic_via_rename(self, tmp_path, monkeypatch):
        """A concurrent reader must never see a torn file: both twins
        go through a temp file and an ``os.replace``, and the temp
        files do not outlive the write."""
        import os as _os

        from repro.telemetry import exporters

        replaced = []
        real_replace = _os.replace

        def spy(src, dst):
            # the destination must not yet hold partial new content:
            # all bytes arrive in this single atomic step
            replaced.append((_os.path.basename(src), _os.path.basename(dst)))
            return real_replace(src, dst)

        monkeypatch.setattr(exporters.os, "replace", spy)
        path = tmp_path / "m.json"
        write_metrics(str(path), _registry().snapshot())
        assert replaced == [
            ("m.json.tmp", "m.json"),
            ("m.json.prom.tmp", "m.json.prom"),
        ]
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "m.json", "m.json.prom",
        ]

    def test_overwrite_leaves_whole_new_content(self, tmp_path):
        path = tmp_path / "m.json"
        write_metrics(str(path), _registry().snapshot())
        reg = _registry()
        reg.counter("repro_events_total", {"kind": "MemRead"}).inc(1)
        write_metrics(str(path), reg.snapshot())
        doc = json.loads(path.read_text())  # parses ⇒ not torn
        assert doc["version"] == 1
