"""The parallel harness satellite: worker metric snapshots merge home.

One case (T1) through all three detector configurations, sequentially
and with two worker processes.  The rows — and therefore the rendered
report — must be identical either way, and the parent's merged registry
must agree with the sequential one on every deterministic family.

Wall-clock counters (phase seconds, detector busy seconds) and the
warm-vs-cold interning tallies legitimately differ between the two
execution shapes (N worker processes = N cold tables), so the
comparison is on the run-derived families, not the timings.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import figure6_table
from repro.experiments.harness import run_figure6
from repro.sip.workload import evaluation_cases
from repro.telemetry import Telemetry
from repro.telemetry.schema import REQUIRED_FAMILIES, validate_snapshot

#: Families whose values are functions of the (seeded) runs alone.
_DETERMINISTIC = (
    "repro_events_total",
    "repro_warning_locations",
    "repro_warnings_dynamic_total",
    "repro_detector_events_total",
    "repro_runs_total",
    "repro_vm_route_builds_total",
    "repro_state_transitions_total",
)


def _values(snapshot: dict, name: str) -> dict:
    family = snapshot["metrics"].get(name, {"samples": []})
    return {
        tuple(sorted((s.get("labels") or {}).items())): s["value"]
        for s in family["samples"]
    }


@pytest.mark.slow
class TestParallelMerge:
    @pytest.fixture(scope="class")
    def sweeps(self):
        cases = [c for c in evaluation_cases() if c.case_id == "T1"]
        seq_tel, par_tel = Telemetry(), Telemetry()
        seq_rows = run_figure6(cases, seed=42, telemetry=seq_tel)
        par_rows = run_figure6(cases, seed=42, workers=2, telemetry=par_tel)
        return seq_rows, seq_tel.snapshot(), par_rows, par_tel.snapshot()

    def test_rows_bit_identical(self, sweeps):
        seq_rows, _, par_rows, _ = sweeps
        assert figure6_table(seq_rows) == figure6_table(par_rows)

    def test_merged_snapshot_passes_schema(self, sweeps):
        _, _, _, par_snap = sweeps
        assert (
            validate_snapshot(par_snap, require_families=REQUIRED_FAMILIES)
            == []
        )

    @pytest.mark.parametrize("family", _DETERMINISTIC)
    def test_deterministic_families_agree(self, sweeps, family):
        _, seq_snap, _, par_snap = sweeps
        assert _values(seq_snap, family) == _values(par_snap, family)

    def test_runs_total_counts_all_cells(self, sweeps):
        _, seq_snap, _, par_snap = sweeps
        # T1 × {original, hwlc, hwlc+dr} = 3 cells.
        assert _values(seq_snap, "repro_runs_total")[()] == 3
        assert _values(par_snap, "repro_runs_total")[()] == 3

    def test_timing_families_present_in_merged(self, sweeps):
        _, _, _, par_snap = sweeps
        assert "repro_detector_busy_seconds_total" in par_snap["metrics"]
        assert "repro_phase_seconds_total" in par_snap["metrics"]
        phases = _values(par_snap, "repro_phase_seconds_total")
        assert (("phase", "T1/hwlc+dr"),) in phases


def test_uninstrumented_sweep_unchanged():
    """telemetry=None keeps both sequential and parallel paths inert."""
    cases = [c for c in evaluation_cases() if c.case_id == "T1"]
    rows = run_figure6(cases, seed=42)
    assert len(rows) == 1 and rows[0].case_id == "T1"
