"""Unit tests for structured logging and the crash flight recorder."""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.telemetry.logs import (
    LEVELS,
    NULL_LOGGER,
    FlightRecorder,
    StructuredLogger,
    dump_flight_spool,
    flight_spool_path,
    read_flight_records,
)


def _lines(stream: io.StringIO) -> list[dict]:
    return [json.loads(l) for l in stream.getvalue().splitlines() if l]


class TestStructuredLogger:
    def test_record_schema(self):
        out = io.StringIO()
        log = StructuredLogger(out, level="debug")
        log.info("session_open", session="s0001", config="hwlc+dr")
        (rec,) = _lines(out)
        # leading keys in emission order, correlation fields present
        assert list(rec)[:4] == ["ts", "level", "event", "pid"]
        assert rec["level"] == "info"
        assert rec["event"] == "session_open"
        assert rec["pid"] == os.getpid()
        assert rec["session"] == "s0001"
        assert isinstance(rec["ts"], float)

    def test_level_threshold_filters_stream(self):
        out = io.StringIO()
        log = StructuredLogger(out, level="warning")
        log.debug("a")
        log.info("b")
        log.warning("c")
        log.error("d")
        assert [r["event"] for r in _lines(out)] == ["c", "d"]

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            StructuredLogger(io.StringIO(), level="verbose")

    def test_bind_stamps_fields_and_shares_stream(self):
        out = io.StringIO()
        root = StructuredLogger(out, level="info")
        child = root.bind(worker_id="w1").bind(session="s0002")
        child.info("route", slot=1)
        (rec,) = _lines(out)
        assert rec["worker_id"] == "w1"
        assert rec["session"] == "s0002"
        assert rec["slot"] == 1

    def test_call_fields_override_bound(self):
        out = io.StringIO()
        log = StructuredLogger(out).bind(session="bound")
        log.info("x", session="call")
        assert _lines(out)[0]["session"] == "call"

    def test_null_logger_is_disabled_and_silent(self):
        assert not NULL_LOGGER.enabled
        NULL_LOGGER.error("anything", session="s1")  # must not raise

    def test_ring_captures_below_threshold(self):
        ring = FlightRecorder(capacity=8)
        out = io.StringIO()
        log = StructuredLogger(out, level="error", ring=ring)
        log.debug("quiet", session="s1")
        assert _lines(out) == []  # below the stream threshold
        assert [r["event"] for r in ring.records()] == ["quiet"]

    def test_levels_are_ordered(self):
        assert (
            LEVELS["debug"] < LEVELS["info"]
            < LEVELS["warning"] < LEVELS["error"]
        )

    def test_broken_stream_never_raises(self):
        class Broken:
            def write(self, _):
                raise OSError("disk full")

            def flush(self):
                raise OSError("disk full")

        StructuredLogger(Broken()).info("x")  # must not raise


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        ring = FlightRecorder(capacity=4)
        for i in range(10):
            ring.record({"i": i})
        assert [r["i"] for r in ring.records()] == [6, 7, 8, 9]
        assert len(ring) == 4

    def test_frame_record_shape(self):
        ring = FlightRecorder(capacity=4)
        ring.frame("recv", "DATA", 4096, session="s0001")
        (rec,) = ring.records()
        assert rec["event"] == "frame"
        assert rec["dir"] == "recv"
        assert rec["frame"] == "DATA"
        assert rec["bytes"] == 4096
        assert rec["session"] == "s0001"

    def test_spool_sync_and_read(self, tmp_path):
        spool = flight_spool_path(tmp_path, "w0")
        ring = FlightRecorder(
            capacity=8, spool_path=spool, sync_every=2, sync_interval=0,
        )
        ring.record({"a": 1})
        assert not os.path.exists(spool)  # below the sync cadence
        ring.record({"b": 2})
        assert read_flight_records(spool) == [{"a": 1}, {"b": 2}]
        ring.close()

    def test_clean_close_deletes_spool(self, tmp_path):
        spool = flight_spool_path(tmp_path, "w0")
        ring = FlightRecorder(
            capacity=8, spool_path=spool, sync_every=1, sync_interval=0,
        )
        ring.record({"a": 1})
        assert os.path.exists(spool)
        ring.close(delete=True)
        assert not os.path.exists(spool)

    def test_dump_renames_spool(self, tmp_path):
        spool = flight_spool_path(tmp_path, "w1")
        ring = FlightRecorder(
            capacity=8, spool_path=spool, sync_every=1, sync_interval=0,
        )
        ring.record({"event": "frame"})
        dump = dump_flight_spool(tmp_path, "w1", timestamp=1234)
        assert dump == str(tmp_path / "flight-w1-1234.jsonl")
        assert not os.path.exists(spool)
        assert read_flight_records(dump) == [{"event": "frame"}]
        # second dump at the same timestamp gets a collision suffix
        ring2 = FlightRecorder(
            capacity=8, spool_path=spool, sync_every=1, sync_interval=0,
        )
        ring2.record({"event": "frame"})
        dump2 = dump_flight_spool(tmp_path, "w1", timestamp=1234)
        assert dump2 == str(tmp_path / "flight-w1-1234-2.jsonl")
        ring2.close()

    def test_dump_without_spool_returns_none(self, tmp_path):
        assert dump_flight_spool(tmp_path, "w9") is None

    def test_read_skips_torn_tail(self, tmp_path):
        path = tmp_path / "flight-w0-1.jsonl"
        path.write_text('{"a": 1}\n{"b": 2}\n{"torn": ')
        assert read_flight_records(path) == [{"a": 1}, {"b": 2}]

    def test_read_missing_file_is_empty(self, tmp_path):
        assert read_flight_records(tmp_path / "nope.jsonl") == []

    def test_time_based_sync_flushes_light_traffic(self, tmp_path):
        import time

        spool = flight_spool_path(tmp_path, "w0")
        ring = FlightRecorder(
            capacity=8, spool_path=spool, sync_every=1000,
            sync_interval=0.05,
        )
        ring.record({"only": 1})  # far below sync_every
        deadline = time.time() + 5.0
        while not os.path.exists(spool) and time.time() < deadline:
            time.sleep(0.02)
        assert read_flight_records(spool) == [{"only": 1}]
        ring.close(delete=True)
