"""merge_snapshots edge cases the live admin endpoint exercises.

``GET /metrics`` merges the acceptor's registry with whatever each
worker answers over the control pipe *at that instant* — which means
the merge must cope with shapes the batch harness never produces:
per-session labeled histogram families, gauges whose merge modes
disagree about restarts, a worker that just respawned and reports a
nearly-empty registry, and a worker that dropped out of the scrape
entirely.
"""

from __future__ import annotations

from repro.telemetry import MetricsRegistry, merge_snapshots
from repro.telemetry.schema import validate_snapshot


def _sample(snapshot: dict, name: str, **labels):
    for s in snapshot["metrics"][name]["samples"]:
        if (s.get("labels") or {}) == labels:
            return s
    raise AssertionError(f"no {name} sample with labels {labels}")


def _worker(sessions: dict[str, int], active: int) -> dict:
    """A worker-shaped registry: labeled histograms + both gauge modes."""
    reg = MetricsRegistry()
    for sid, events in sessions.items():
        h = reg.histogram(
            "repro_service_batch_events",
            {"session": sid},
            buckets=(10, 100),
        )
        h.observe(events)
    reg.gauge("repro_service_sessions_active", merge="sum").set(active)
    reg.gauge("repro_service_queue_high_water", merge="max").set(
        max(sessions.values(), default=0)
    )
    reg.counter("repro_service_events_total").inc(sum(sessions.values()))
    return reg.snapshot()


class TestLabeledHistograms:
    def test_distinct_sessions_keep_their_samples(self):
        merged = merge_snapshots(
            [_worker({"s0001": 5}, 1), _worker({"s0002": 500}, 1)]
        )
        fam = merged["metrics"]["repro_service_batch_events"]
        assert fam["type"] == "histogram"
        labels = sorted(s["labels"]["session"] for s in fam["samples"])
        assert labels == ["s0001", "s0002"]
        validate_snapshot(merged)

    def test_same_label_histograms_add(self):
        # One session's counts split across two snapshots (e.g. before
        # and after a handover) fold into one sample.
        merged = merge_snapshots(
            [_worker({"s0001": 5}, 1), _worker({"s0001": 500}, 1)]
        )
        s = _sample(merged, "repro_service_batch_events", session="s0001")
        assert s["count"] == 2
        assert s["sum"] == 505.0
        assert s["counts"] == [1, 0, 1]  # le=10, le=100, +Inf


class TestGaugeModesUnderRestart:
    def test_sum_gauges_add_across_workers(self):
        merged = merge_snapshots([_worker({}, 3), _worker({}, 2)])
        s = _sample(merged, "repro_service_sessions_active")
        assert s["value"] == 5.0
        assert s["merge"] == "sum"

    def test_restarted_worker_resets_its_contribution(self):
        # Mid-scrape restart: the replacement answers with zeros.  A
        # sum gauge must reflect only what the *current* processes
        # report — no ghost of the dead worker's last value.
        merged = merge_snapshots([_worker({}, 3), _worker({}, 0)])
        assert _sample(merged, "repro_service_sessions_active")["value"] == 3.0

    def test_max_gauge_takes_peak_across_workers(self):
        merged = merge_snapshots(
            [_worker({"s0001": 5}, 1), _worker({"s0002": 500}, 1)]
        )
        s = _sample(merged, "repro_service_queue_high_water")
        assert s["value"] == 500.0

    def test_merge_mode_survives_the_merge(self):
        # Merging a merged snapshot again (the acceptor's own snapshot
        # is itself an input next round) must preserve gauge modes.
        once = merge_snapshots([_worker({}, 2), _worker({}, 1)])
        twice = merge_snapshots([once, _worker({}, 4)])
        assert _sample(twice, "repro_service_sessions_active")["value"] == 7.0


class TestEmptyWorker:
    def test_just_spawned_worker_contributes_nothing(self):
        # A replacement worker a moment after spawn: version header,
        # no families yet.  The merge must accept it untouched.
        empty = {"version": 1, "metrics": {}}
        busy = _worker({"s0001": 5}, 1)
        merged = merge_snapshots([busy, empty])
        assert merged == merge_snapshots([busy])
        validate_snapshot(merged)

    def test_all_empty_is_valid(self):
        merged = merge_snapshots(
            [{"version": 1, "metrics": {}}, {"version": 1, "metrics": {}}]
        )
        assert merged["metrics"] == {}
        validate_snapshot(merged)

    def test_dropped_out_worker_is_just_absent(self):
        # worker_snapshots() skips a worker that died mid-scrape; the
        # merge of the survivors is still schema-valid and coherent.
        merged = merge_snapshots([_worker({"s0001": 7}, 1)])
        assert _sample(merged, "repro_service_sessions_active")["value"] == 1.0
        validate_snapshot(merged)
