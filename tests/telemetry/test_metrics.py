"""Unit tests for the metrics model (counters, gauges, histograms)."""

from __future__ import annotations

import pytest

from repro.telemetry.exporters import to_json
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    SNAPSHOT_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = Counter()
        with pytest.raises(ValueError):
            c.inc(-1)
        assert c.value == 0.0

    def test_merge_sums(self):
        a, b = Counter(), Counter()
        a.inc(3)
        b.inc(4)
        a._merge(b._sample())
        assert a.value == 7


class TestGauge:
    def test_set_and_inc(self):
        g = Gauge()
        g.set(10)
        g.inc(-3)
        assert g.value == 7

    def test_unknown_merge_mode_rejected(self):
        with pytest.raises(ValueError):
            Gauge(merge_mode="average")

    @pytest.mark.parametrize(
        "mode,expected", [("max", 9), ("sum", 13), ("last", 4)]
    )
    def test_merge_modes(self, mode, expected):
        g = Gauge(merge_mode=mode)
        g.set(9)
        other = Gauge(merge_mode=mode)
        other.set(4)
        g._merge(other._sample())
        assert g.value == expected

    def test_sample_carries_merge_mode(self):
        # The merge mode must survive the snapshot round-trip so a
        # registry reconstructed purely from worker snapshots merges
        # with the declared semantics, not the default.
        g = Gauge(merge_mode="sum")
        assert g._sample()["merge"] == "sum"


class TestHistogram:
    def test_bucket_placement(self):
        h = Histogram(buckets=(1.0, 2.0, 5.0))
        for v in (0.5, 1.0, 1.5, 4.0, 100.0):
            h.observe(v)
        # counts: (..1.0], (1.0..2.0], (2.0..5.0], +Inf
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(107.0)

    def test_cumulative_form(self):
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(9.0)
        cum = h.cumulative()
        assert cum == [(1.0, 1), (2.0, 2), (float("inf"), 3)]

    def test_bounds_sorted_regardless_of_input(self):
        h = Histogram(buckets=(5.0, 1.0, 2.0))
        assert h.bounds == (1.0, 2.0, 5.0)

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())

    def test_merge_adds_bucketwise(self):
        a = Histogram(buckets=(1.0, 2.0))
        b = Histogram(buckets=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(10.0)
        a._merge(b._sample())
        assert a.counts == [1, 1, 1]
        assert a.count == 3
        assert a.sum == pytest.approx(12.0)

    def test_merge_rejects_mismatched_bounds(self):
        a = Histogram(buckets=(1.0, 2.0))
        b = Histogram(buckets=(1.0, 3.0))
        with pytest.raises(ValueError):
            a._merge(b._sample())


class TestRegistry:
    def test_upsert_returns_same_child(self):
        reg = MetricsRegistry()
        c1 = reg.counter("x_total", {"k": "a"})
        c2 = reg.counter("x_total", {"k": "a"})
        assert c1 is c2
        c3 = reg.counter("x_total", {"k": "b"})
        assert c3 is not c1

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        c1 = reg.counter("x_total", {"a": "1", "b": "2"})
        c2 = reg.counter("x_total", {"b": "2", "a": "1"})
        assert c1 is c2

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x_total")

    @pytest.mark.parametrize("bad", ["", "9lives", "has space", "has-dash"])
    def test_invalid_names_rejected(self, bad):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            reg.counter(bad)

    def test_value_reader(self):
        reg = MetricsRegistry()
        assert reg.value("missing_total") == 0.0
        reg.counter("x_total", {"k": "a"}).inc(7)
        assert reg.value("x_total", {"k": "a"}) == 7
        assert reg.value("x_total", {"k": "zzz"}) == 0.0

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c_total", help="a counter").inc(1)
        reg.gauge("g").set(5)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["version"] == SNAPSHOT_VERSION
        assert set(snap["metrics"]) == {"c_total", "g", "h"}
        assert snap["metrics"]["c_total"]["help"] == "a counter"
        assert snap["metrics"]["h"]["samples"][0]["counts"] == [1, 0]

    def test_snapshot_determinism_byte_equal(self):
        # Equal logical state reached through different insertion orders
        # must serialise to equal bytes — the parallel harness depends
        # on determinism for reproducible artifact files.
        def build(order):
            reg = MetricsRegistry()
            for kind in order:
                reg.counter("e_total", {"kind": kind}).inc({"a": 1, "b": 2}[kind])
            reg.gauge("size").set(3)
            return reg

        a = build(["a", "b"])
        b = build(["b", "a"])
        assert to_json(a.snapshot()) == to_json(b.snapshot())

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestMergeSnapshot:
    def _worker(self, n):
        reg = MetricsRegistry()
        reg.counter("events_total", {"kind": "load"}).inc(10 * n)
        reg.gauge("table_size").set(100 + n)  # merge=max default
        reg.gauge("work_done", merge="sum").set(n)
        reg.histogram("lat", buckets=(1.0, 2.0)).observe(float(n))
        return reg.snapshot()

    def test_merge_counters_sum(self):
        parent = MetricsRegistry()
        parent.merge_snapshot(self._worker(1))
        parent.merge_snapshot(self._worker(2))
        assert parent.value("events_total", {"kind": "load"}) == 30

    def test_merge_gauges_honor_sample_merge_mode(self):
        # The parent registry never declared these gauges — their merge
        # semantics must come from the snapshot samples themselves.
        parent = MetricsRegistry()
        parent.merge_snapshot(self._worker(1))
        parent.merge_snapshot(self._worker(2))
        assert parent.value("table_size") == 102  # max
        assert parent.value("work_done") == 3  # sum

    def test_merge_histograms(self):
        parent = MetricsRegistry()
        parent.merge_snapshot(self._worker(1))  # observe 1.0
        parent.merge_snapshot(self._worker(2))  # observe 2.0
        h = parent.get("lat")
        assert h.count == 2
        assert h.counts == [1, 1, 0]

    def test_merge_is_commutative_for_these_semantics(self):
        ab = MetricsRegistry()
        ab.merge_snapshot(self._worker(1))
        ab.merge_snapshot(self._worker(2))
        ba = MetricsRegistry()
        ba.merge_snapshot(self._worker(2))
        ba.merge_snapshot(self._worker(1))
        assert to_json(ab.snapshot()) == to_json(ba.snapshot())

    def test_merge_into_populated_registry(self):
        parent = MetricsRegistry()
        parent.counter("events_total", {"kind": "load"}).inc(5)
        parent.merge_snapshot(self._worker(1))
        assert parent.value("events_total", {"kind": "load"}) == 15

    def test_version_mismatch_rejected(self):
        parent = MetricsRegistry()
        snap = self._worker(1)
        snap["version"] = 999
        with pytest.raises(ValueError, match="version"):
            parent.merge_snapshot(snap)

    def test_unknown_type_rejected(self):
        parent = MetricsRegistry()
        snap = {
            "version": SNAPSHOT_VERSION,
            "metrics": {
                "x": {"type": "summary", "help": "", "samples": [{"labels": {}}]}
            },
        }
        with pytest.raises(ValueError, match="unknown metric type"):
            parent.merge_snapshot(snap)
