"""Integration tests: Telemetry woven into real VM runs.

The unit tests pin the metrics model; these tests pin the *weave* — that
an instrumented run of a known workload produces the metric families the
pipeline promises, with values that agree with the VM's own accounting.
"""

from __future__ import annotations

import pytest

from repro.detectors import DjitDetector, HelgrindConfig, HelgrindDetector
from repro.experiments.harness import run_proxy_case
from repro.experiments.performance import workload_guest
from repro.runtime import VM, RoundRobinScheduler
from repro.sip.workload import evaluation_cases
from repro.telemetry import Telemetry
from repro.telemetry.schema import REQUIRED_FAMILIES, validate_snapshot


def _instrumented_run(telemetry, detectors=None, n_threads=2, iterations=40):
    if detectors is None:
        detectors = (HelgrindDetector(HelgrindConfig.hwlc_dr()),)
    vm = VM(
        scheduler=RoundRobinScheduler(),
        detectors=detectors,
        telemetry=telemetry,
    )
    telemetry.attach(vm)
    vm.run(workload_guest, n_threads, iterations)
    telemetry.record_run(vm)
    return vm


class TestWorkloadRun:
    @pytest.fixture(scope="class")
    def run(self):
        telemetry = Telemetry()
        vm = _instrumented_run(telemetry)
        return telemetry, vm, telemetry.snapshot()

    def test_snapshot_passes_pipeline_schema(self, run):
        _, _, snap = run
        assert validate_snapshot(snap, require_families=REQUIRED_FAMILIES) == []

    def test_event_counts_match_vm_stats(self, run):
        telemetry, vm, _ = run
        reg = telemetry.registry
        for kind, count in vm.stats.events.items():
            assert reg.value("repro_events_total", {"kind": kind}) == count
        total = sum(
            s["value"]
            for s in telemetry.snapshot()["metrics"]["repro_events_total"][
                "samples"
            ]
        )
        assert total == vm.stats.total_events

    def test_expected_event_kinds_present(self, run):
        # The workload takes locks, reads/writes memory, spawns/joins
        # threads — all of those kinds must show up in the tally.
        telemetry, _, _ = run
        reg = telemetry.registry
        for kind in (
            "MemoryAccess",
            "LockAcquire",
            "LockRelease",
            "ThreadCreate",
            "ThreadJoin",
        ):
            assert reg.value("repro_events_total", {"kind": kind}) > 0, kind

    def test_cache_hit_rates_nonzero(self, run):
        telemetry, vm, _ = run
        reg = telemetry.registry
        # Route cache: far more events than distinct event types.
        builds = reg.value("repro_vm_route_builds_total")
        hits = reg.value("repro_vm_route_cache_hits_total")
        assert builds == len(vm._dispatch)
        assert hits > builds > 0
        # Block-lookup cache: the loop hammers the same couple of blocks.
        block_hits = reg.value(
            "repro_block_cache_hits_total", {"slot": "last"}
        ) + reg.value("repro_block_cache_hits_total", {"slot": "prev"})
        assert block_hits > 0
        # Lock-set memo: repeated accesses under one lock-set intern once.
        memo_hits = sum(
            reg.value("repro_lockset_memo_hits_total", {"op": op})
            for op in ("intern", "intersect", "with", "without")
        )
        assert memo_hits > 0
        assert reg.value("repro_lockset_table_size") > 0

    def test_detector_accounting(self, run):
        telemetry, vm, snap = run
        reg = telemetry.registry
        # Every event the helgrind detector subscribed to was timed.
        routed = sum(
            s["value"]
            for s in snap["metrics"]["repro_detector_events_total"]["samples"]
            if s["labels"]["detector"] == "helgrind"
        )
        assert 0 < routed <= vm.stats.total_events
        assert telemetry.detector_busy_seconds() > 0
        # The shadow-state machine saw transitions (Figure 5 material).
        assert "repro_state_transitions_total" in snap["metrics"]
        assert "repro_shadow_words" in snap["metrics"]
        # Detector-declared summary stats.
        assert (
            reg.value(
                "repro_detector_state",
                {"detector": "helgrind", "stat": "access_checks"},
            )
            > 0
        )
        assert reg.value("repro_runs_total") == 1


class TestDisabled:
    def test_disabled_telemetry_is_inert(self):
        telemetry = Telemetry(enabled=False)
        vm = VM(scheduler=RoundRobinScheduler())
        assert telemetry.attach(vm) is vm
        assert getattr(vm, "_telemetry", None) is None
        vm.run(workload_guest, 1, 10)
        telemetry.record_run(vm)
        with telemetry.phase("x"):
            pass
        assert telemetry.snapshot()["metrics"] == {}

    def test_wrap_handler_identity_when_disabled(self):
        telemetry = Telemetry(enabled=False)

        def handler(event, vm):  # pragma: no cover - never called
            pass

        assert telemetry.wrap_handler(object(), type("E", (), {}), handler) is handler

    def test_unattached_vm_keeps_fast_path(self):
        # No telemetry kwarg at all: routes must be the raw bound methods.
        vm = VM(
            scheduler=RoundRobinScheduler(),
            detectors=(HelgrindDetector(HelgrindConfig.hwlc_dr()),),
        )
        vm.run(workload_guest, 1, 10)
        assert all(
            getattr(fn, "__name__", "") != "timed"
            for handlers in vm._dispatch.values()
            for fn in handlers
        )


class TestDetectorNaming:
    def test_two_same_type_detectors_get_distinct_names(self):
        telemetry = Telemetry()
        dets = (
            HelgrindDetector(HelgrindConfig.hwlc_dr()),
            HelgrindDetector(HelgrindConfig.original()),
        )
        _instrumented_run(telemetry, detectors=dets, n_threads=1, iterations=10)
        snap = telemetry.snapshot()
        names = {
            s["labels"]["detector"]
            for s in snap["metrics"]["repro_detector_events_total"]["samples"]
        }
        assert names == {"helgrind", "helgrind#2"}

    def test_fresh_detectors_across_vms_aggregate_under_one_name(self):
        # The Figure-6 sweep builds a fresh detector per cell; they must
        # all fold into one "helgrind" series, not helgrind#2..#24.
        telemetry = Telemetry()
        for _ in range(3):
            _instrumented_run(telemetry, n_threads=1, iterations=10)
        snap = telemetry.snapshot()
        names = {
            s["labels"]["detector"]
            for s in snap["metrics"]["repro_detector_events_total"]["samples"]
        }
        assert names == {"helgrind"}
        assert telemetry.registry.value("repro_runs_total") == 3


class TestEmitTiming:
    def test_time_emit_breakdown_ordering(self):
        telemetry = Telemetry()
        det = HelgrindDetector(HelgrindConfig.hwlc_dr())
        vm = VM(
            scheduler=RoundRobinScheduler(),
            detectors=(det,),
            telemetry=telemetry,
        )
        telemetry.attach(vm, time_emit=True)
        vm.run(workload_guest, 1, 60)
        emit = telemetry.emit_seconds()
        busy = telemetry.detector_busy_seconds()
        # emit wraps dispatch + detector work, so it must dominate.
        assert emit > busy > 0
        assert telemetry.registry.value("repro_emit_calls_total") > 0


class TestTracing:
    def test_trace_spans_emitted(self):
        telemetry = Telemetry(trace=True, batch_events=64)
        with telemetry.phase("unit-test"):
            _instrumented_run(telemetry, n_threads=1, iterations=60)
        telemetry.flush()
        doc = telemetry.tracer.to_chrome()
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert "detector" in cats  # batch spans
        assert "phase" in cats  # the phase() span
        # The helgrind track got named.
        assert any(
            e["ph"] == "M" and e["args"]["name"] == "helgrind"
            for e in doc["traceEvents"]
        )

    def test_batch_histogram_observed(self):
        telemetry = Telemetry(batch_events=64)
        _instrumented_run(telemetry, n_threads=1, iterations=60)
        telemetry.flush()
        hist = telemetry.registry.get(
            "repro_detector_batch_busy_seconds", {"detector": "helgrind"}
        )
        assert hist is not None and hist.count > 0


class TestProxyCase:
    def test_t1_instrumented_run_matches_report(self):
        case = next(c for c in evaluation_cases() if c.case_id == "T1")
        telemetry = Telemetry()
        run = run_proxy_case(case, "hwlc+dr", telemetry=telemetry)
        reg = telemetry.registry
        snap = telemetry.snapshot()
        assert validate_snapshot(snap, require_families=REQUIRED_FAMILIES) == []
        # Event tally agrees with the run record.
        total = sum(
            s["value"] for s in snap["metrics"]["repro_events_total"]["samples"]
        )
        assert total == run.events
        # Warning-location gauges sum to the Figure-6 location count.
        locations = sum(
            s["value"]
            for s in snap["metrics"].get("repro_warning_locations", {}).get(
                "samples", []
            )
            if s["labels"]["detector"] == "helgrind"
        )
        assert locations == run.location_count
        # The run was wrapped in its case/config phase.
        assert reg.value(
            "repro_phase_seconds_total", {"phase": "T1/hwlc+dr"}
        ) > 0

    def test_uninstrumented_run_identical_results(self):
        case = next(c for c in evaluation_cases() if c.case_id == "T1")
        plain = run_proxy_case(case, "hwlc+dr")
        instr = run_proxy_case(case, "hwlc+dr", telemetry=Telemetry())
        assert plain.location_count == instr.location_count
        assert plain.events == instr.events
        assert plain.classified.counts == instr.classified.counts

    def test_djit_deep_dive(self):
        # The stats/deep-dive path: a non-helgrind detector still yields
        # busy-time series and its own summary vocabulary.
        case = next(c for c in evaluation_cases() if c.case_id == "T1")
        telemetry = Telemetry()
        run_proxy_case(case, "hwlc+dr", detector=DjitDetector(), telemetry=telemetry)
        reg = telemetry.registry
        assert (
            reg.value(
                "repro_detector_state",
                {"detector": "djit", "stat": "logged_words"},
            )
            > 0
        )
