"""Unit tests for the snapshot schema validator (the CI smoke check)."""

from __future__ import annotations

import json

from repro.telemetry.metrics import SNAPSHOT_VERSION, MetricsRegistry
from repro.telemetry.schema import REQUIRED_FAMILIES, main, validate_snapshot


def _valid() -> dict:
    reg = MetricsRegistry()
    reg.counter("repro_events_total", {"kind": "MemRead"}).inc(10)
    reg.gauge("repro_lockset_table_size").set(3)
    reg.histogram("repro_batch", buckets=(0.1, 1.0)).observe(0.5)
    return reg.snapshot()


class TestValidateSnapshot:
    def test_registry_snapshot_is_valid(self):
        assert validate_snapshot(_valid()) == []

    def test_non_dict_rejected(self):
        assert validate_snapshot([1, 2]) != []

    def test_bad_version(self):
        snap = _valid()
        snap["version"] = SNAPSHOT_VERSION + 1
        assert any("version" in p for p in validate_snapshot(snap))

    def test_unknown_type(self):
        snap = _valid()
        snap["metrics"]["repro_events_total"]["type"] = "summary"
        assert any("unknown metric type" in p for p in validate_snapshot(snap))

    def test_empty_samples_rejected(self):
        snap = _valid()
        snap["metrics"]["repro_events_total"]["samples"] = []
        assert any("non-empty" in p for p in validate_snapshot(snap))

    def test_duplicate_label_sets_rejected(self):
        snap = _valid()
        fam = snap["metrics"]["repro_events_total"]
        fam["samples"].append(dict(fam["samples"][0]))
        assert any("duplicate label set" in p for p in validate_snapshot(snap))

    def test_negative_counter_rejected(self):
        snap = _valid()
        snap["metrics"]["repro_events_total"]["samples"][0]["value"] = -1
        assert any("negative" in p for p in validate_snapshot(snap))

    def test_histogram_count_mismatch(self):
        snap = _valid()
        snap["metrics"]["repro_batch"]["samples"][0]["count"] = 99
        assert any("sum to" in p for p in validate_snapshot(snap))

    def test_histogram_counts_length(self):
        snap = _valid()
        snap["metrics"]["repro_batch"]["samples"][0]["counts"] = [1]
        assert any("len(buckets)+1" in p for p in validate_snapshot(snap))

    def test_unsorted_buckets_rejected(self):
        snap = _valid()
        sample = snap["metrics"]["repro_batch"]["samples"][0]
        sample["buckets"] = list(reversed(sample["buckets"]))
        assert any("sorted" in p for p in validate_snapshot(snap))

    def test_required_families(self):
        problems = validate_snapshot(
            _valid(), require_families=("repro_missing_total",)
        )
        assert any("repro_missing_total" in p for p in problems)
        # The pipeline list is non-trivial and all Prometheus-legal names.
        assert len(REQUIRED_FAMILIES) >= 5
        assert all(name.startswith("repro_") for name in REQUIRED_FAMILIES)

    def test_gauge_merge_key_is_allowed(self):
        # Gauge samples carry a "merge" key (snapshot round-trip of the
        # merge mode); the validator must accept the extra key.
        snap = _valid()
        assert snap["metrics"]["repro_lockset_table_size"]["samples"][0][
            "merge"
        ] == "max"
        assert validate_snapshot(snap) == []


class TestMain:
    def test_valid_file_ok(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(_valid()))
        assert main([str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_invalid_file_fails(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        snap = _valid()
        snap["version"] = 0
        path.write_text(json.dumps(snap))
        assert main([str(path)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_require_pipeline_families_flag(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(_valid()))  # valid but not a full run
        assert main(["--require-pipeline-families", str(path)]) == 1
        out = capsys.readouterr().out
        assert "required metric family" in out

    def test_no_paths_usage(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().err
