"""Unit tests for the Chrome trace-event tracer."""

from __future__ import annotations

import json

from repro.telemetry.tracing import VM_TRACK, Tracer


class TestTracks:
    def test_vm_track_is_zero_and_named(self):
        t = Tracer()
        assert t.track("vm") == VM_TRACK == 0
        meta = [e for e in t.events if e["ph"] == "M"]
        assert any(e["args"]["name"] == "vm" for e in meta)

    def test_track_ids_are_stable_and_distinct(self):
        t = Tracer()
        a = t.track("helgrind")
        b = t.track("djit")
        assert a != b
        assert t.track("helgrind") == a

    def test_each_track_named_once(self):
        t = Tracer()
        t.track("helgrind")
        t.track("helgrind")
        names = [
            e["args"]["name"]
            for e in t.events
            if e["ph"] == "M" and e["args"]["name"] == "helgrind"
        ]
        assert len(names) == 1


class TestRecording:
    def test_complete_event_shape(self):
        t = Tracer()
        t.complete("work", start=0.001, duration=0.002, args={"n": 3})
        ev = t.events[-1]
        assert ev["ph"] == "X"
        assert ev["ts"] == 1000.0  # microseconds
        assert ev["dur"] == 2000.0
        assert ev["args"] == {"n": 3}

    def test_instant_event(self):
        t = Tracer()
        t.instant("marker")
        ev = t.events[-1]
        assert ev["ph"] == "i"
        assert ev["s"] == "t"

    def test_span_context_manager(self):
        t = Tracer()
        before = len(t)
        with t.span("block", category="phase"):
            pass
        assert len(t) == before + 1
        ev = t.events[-1]
        assert ev["ph"] == "X" and ev["cat"] == "phase"
        assert ev["dur"] >= 0

    def test_span_records_on_exception(self):
        t = Tracer()
        try:
            with t.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert t.events[-1]["name"] == "boom"

    def test_now_is_monotonic_nonnegative(self):
        t = Tracer()
        a = t.now()
        b = t.now()
        assert 0 <= a <= b


class TestExport:
    def test_to_chrome_shape(self):
        t = Tracer()
        t.complete("work", start=0.0, duration=0.001)
        doc = t.to_chrome()
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"

    def test_write_is_valid_json(self, tmp_path):
        t = Tracer()
        t.track("helgrind")
        t.complete("batch", start=0.0, duration=0.001, track=1)
        path = tmp_path / "trace.json"
        t.write(str(path))
        doc = json.loads(path.read_text())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "X" in phases and "M" in phases
