"""Unit tests for the Chrome trace-event tracer."""

from __future__ import annotations

import json

from repro.telemetry.tracing import VM_TRACK, Tracer, merge_chrome_traces


class TestTracks:
    def test_vm_track_is_zero_and_named(self):
        t = Tracer()
        assert t.track("vm") == VM_TRACK == 0
        meta = [e for e in t.events if e["ph"] == "M"]
        assert any(e["args"]["name"] == "vm" for e in meta)

    def test_track_ids_are_stable_and_distinct(self):
        t = Tracer()
        a = t.track("helgrind")
        b = t.track("djit")
        assert a != b
        assert t.track("helgrind") == a

    def test_each_track_named_once(self):
        t = Tracer()
        t.track("helgrind")
        t.track("helgrind")
        names = [
            e["args"]["name"]
            for e in t.events
            if e["ph"] == "M" and e["args"]["name"] == "helgrind"
        ]
        assert len(names) == 1


class TestRecording:
    def test_complete_event_shape(self):
        t = Tracer()
        t.complete("work", start=0.001, duration=0.002, args={"n": 3})
        ev = t.events[-1]
        assert ev["ph"] == "X"
        assert ev["ts"] == 1000.0  # microseconds
        assert ev["dur"] == 2000.0
        assert ev["args"] == {"n": 3}

    def test_instant_event(self):
        t = Tracer()
        t.instant("marker")
        ev = t.events[-1]
        assert ev["ph"] == "i"
        assert ev["s"] == "t"

    def test_span_context_manager(self):
        t = Tracer()
        before = len(t)
        with t.span("block", category="phase"):
            pass
        assert len(t) == before + 1
        ev = t.events[-1]
        assert ev["ph"] == "X" and ev["cat"] == "phase"
        assert ev["dur"] >= 0

    def test_span_records_on_exception(self):
        t = Tracer()
        try:
            with t.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert t.events[-1]["name"] == "boom"

    def test_now_is_monotonic_nonnegative(self):
        t = Tracer()
        a = t.now()
        b = t.now()
        assert 0 <= a <= b


class TestExport:
    def test_to_chrome_shape(self):
        t = Tracer()
        t.complete("work", start=0.0, duration=0.001)
        doc = t.to_chrome()
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"

    def test_write_is_valid_json(self, tmp_path):
        t = Tracer()
        t.track("helgrind")
        t.complete("batch", start=0.0, duration=0.001, track=1)
        path = tmp_path / "trace.json"
        t.write(str(path))
        doc = json.loads(path.read_text())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "X" in phases and "M" in phases

    def test_epoch_is_exported(self):
        t = Tracer()
        doc = t.to_chrome()
        assert doc["otherData"]["epoch_unix"] == t.epoch
        assert t.epoch > 0

    def test_process_name_metadata(self):
        t = Tracer(pid=7, process_name="w3")
        meta = [
            e for e in t.events
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert meta and meta[0]["args"]["name"] == "w3"
        assert meta[0]["pid"] == 7


def _doc(pid: int, epoch: float, ts: float, name: str = "span") -> dict:
    t = Tracer(pid=pid)
    t.epoch = epoch
    t.complete(name, start=ts, duration=0.001)
    return t.to_chrome()


class TestMergeChromeTraces:
    def test_epoch_alignment_shifts_timestamps(self):
        # Two processes, the second created 2s later: a span both
        # recorded at local t=0 must land 2e6 µs apart after the merge.
        a = _doc(pid=1, epoch=1000.0, ts=0.0, name="acceptor")
        b = _doc(pid=2, epoch=1002.0, ts=0.0, name="worker")
        merged = merge_chrome_traces([a, b])
        spans = {
            e["name"]: e for e in merged["traceEvents"] if e["ph"] == "X"
        }
        assert spans["acceptor"]["ts"] == 0.0
        assert spans["worker"]["ts"] == 2_000_000.0
        assert merged["otherData"]["epoch_unix"] == 1000.0
        assert merged["otherData"]["merged_from"] == 2

    def test_colliding_pids_are_remapped(self):
        a = _doc(pid=1, epoch=1000.0, ts=0.0, name="a")
        b = _doc(pid=1, epoch=1000.0, ts=0.0, name="b")
        merged = merge_chrome_traces([a, b])
        spans = {
            e["name"]: e["pid"]
            for e in merged["traceEvents"]
            if e["ph"] == "X"
        }
        assert spans["a"] != spans["b"]

    def test_distinct_pids_are_preserved(self):
        a = _doc(pid=10, epoch=1000.0, ts=0.0, name="a")
        b = _doc(pid=20, epoch=1000.0, ts=0.0, name="b")
        merged = merge_chrome_traces([a, b])
        pids = {e["pid"] for e in merged["traceEvents"]}
        assert pids == {10, 20}

    def test_names_synthesise_process_metadata(self):
        a = _doc(pid=1, epoch=1000.0, ts=0.0)
        b = _doc(pid=2, epoch=1000.0, ts=0.0)
        merged = merge_chrome_traces([a, b], names=["acceptor", "w0"])
        names = {
            e["pid"]: e["args"]["name"]
            for e in merged["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert set(names.values()) == {"acceptor", "w0"}

    def test_existing_process_names_not_overridden(self):
        t = Tracer(pid=1, process_name="already-named")
        t.complete("x", start=0.0, duration=0.001)
        merged = merge_chrome_traces([t.to_chrome()], names=["filename"])
        names = [
            e["args"]["name"]
            for e in merged["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert names == ["already-named"]

    def test_foreign_doc_without_epoch_is_unshifted(self):
        a = _doc(pid=1, epoch=1000.0, ts=0.0, name="ours")
        foreign = {
            "traceEvents": [
                {"name": "theirs", "ph": "X", "pid": 2, "tid": 0,
                 "ts": 5.0, "dur": 1.0}
            ]
        }
        merged = merge_chrome_traces([a, foreign])
        spans = {
            e["name"]: e["ts"] for e in merged["traceEvents"]
            if e["ph"] == "X"
        }
        assert spans["theirs"] == 5.0  # no epoch, no shift

    def test_merge_of_nothing(self):
        merged = merge_chrome_traces([])
        assert merged["traceEvents"] == []
        assert merged["otherData"]["merged_from"] == 0
