"""The ``repro.api`` facade: profiles, pipelines, incremental sessions.

These are the contracts other layers (the service, the CLI, external
callers) build on:

* ``repro.api.profiles`` is the registry every configuration name
  routes through — look-ups validate, enumeration is sorted, and the
  ``predictive`` tier builds a different detector class;
* the legacy ``detector_config``/``detector_configs`` names and the old
  private ``harness._detector_config`` still work but warn exactly once
  per process (this file runs under ``-W error::DeprecationWarning`` in
  CI, so every unmanaged warning is a hard failure);
* the structured ``Report`` renders the canonical byte-identity text
  and a schema-valid machine twin;
* a ``Session`` fed a recorded trace — in one gulp or arbitrary
  chunks — renders a report byte-identical to ``replay_trace``;
* ``snapshot``/``restore`` round-trips the complete mid-stream state:
  resuming at ``bytes_fed`` finishes with an identical report;
* everything is re-exported from the package root.
"""

from __future__ import annotations

import json
import random
import warnings

import pytest

import repro
import repro.api as api_module
from repro.api import Pipeline, Session
from repro.api.profiles import (
    AnalysisProfile,
    profile,
    profile_names,
    profiles,
)
from repro.detectors import HelgrindConfig, HelgrindDetector
from repro.runtime.trace import replay_trace

ALL_PROFILES = (
    "eraser-states", "extended", "hwlc", "hwlc+dr",
    "original", "predictive", "raw-eraser",
)


@pytest.fixture(scope="module")
def t1_trace(tmp_path_factory):
    """T1 recorded once under hwlc+dr: (path, live report dict)."""
    from repro.experiments.harness import run_proxy_case
    from repro.runtime.trace import TraceRecorder
    from repro.sip.workload import evaluation_cases

    case = next(c for c in evaluation_cases() if c.case_id == "T1")
    path = tmp_path_factory.mktemp("api") / "T1.rptr"
    det = profile("hwlc+dr").detector()
    with TraceRecorder(path, format="binary") as recorder:
        run_proxy_case(case, "hwlc+dr", seed=42, detector=det,
                       extra_hooks=(recorder,))
    return path, det.report.to_dict()


def _offline_text(path, config: str) -> str:
    det = profile(config).detector()
    replay_trace(path, det)
    det.finalize()
    return json.dumps(det.report.to_dict(), indent=2)


class TestProfiles:
    def test_known_names(self):
        assert profile_names() == ALL_PROFILES
        for name in profile_names():
            prof = profile(name)
            assert isinstance(prof, AnalysisProfile)
            assert isinstance(prof.config(), HelgrindConfig)

    def test_profiles_sorted_and_complete(self):
        assert tuple(p.name for p in profiles()) == ALL_PROFILES
        assert all(p.description for p in profiles())

    def test_capabilities(self):
        for name in ("original", "hwlc", "hwlc+dr"):
            assert "paper-eval" in profile(name).capabilities
        assert profile("predictive").predictive
        assert not profile("hwlc+dr").predictive

    def test_predictive_builds_its_own_detector_class(self):
        from repro.detectors.predict import PredictiveDetector

        det = profile("predictive").detector()
        assert isinstance(det, PredictiveDetector)
        legacy = profile("hwlc+dr").detector()
        assert isinstance(legacy, HelgrindDetector)
        assert not isinstance(legacy, PredictiveDetector)

    def test_names_map_to_distinct_feature_sets(self):
        original = profile("original").config()
        hwlc_dr = profile("hwlc+dr").config()
        assert original != hwlc_dr or original is not hwlc_dr

    def test_unknown_name_lists_known_ones(self):
        with pytest.raises(ValueError) as exc:
            profile("helgrind++")
        message = str(exc.value)
        assert "helgrind++" in message
        for name in profile_names():
            assert name in message

    def test_fresh_config_per_call(self):
        prof = profile("hwlc")
        assert prof.config() is not prof.config()

    def test_detector_honours_config_override(self):
        import dataclasses

        prof = profile("hwlc+dr")
        cfg = dataclasses.replace(prof.config(), transition_cache=False)
        det = prof.detector(cfg)
        assert det.config is cfg


class TestDeprecatedShims:
    def test_api_shim_warns_exactly_once(self):
        api_module._DETECTOR_CONFIG_WARNED = False
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                names = api_module.detector_configs()
                cfg = api_module.detector_config("hwlc+dr")
        finally:
            api_module._DETECTOR_CONFIG_WARNED = True
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "repro.api.profiles" in str(deprecations[0].message)
        assert names == profile_names()
        assert isinstance(cfg, HelgrindConfig)

    def test_api_shim_validates_like_the_registry(self):
        api_module._DETECTOR_CONFIG_WARNED = True  # silence, test lookup
        with pytest.raises(ValueError) as exc:
            api_module.detector_config("helgrind++")
        for name in profile_names():
            assert name in str(exc.value)

    def test_harness_shim_warns_exactly_once(self):
        from repro.experiments import harness

        harness._DETECTOR_CONFIG_WARNED = False
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                first = harness._detector_config("hwlc+dr")
                second = harness._detector_config("original")
        finally:
            harness._DETECTOR_CONFIG_WARNED = True
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "repro.api" in str(deprecations[0].message)
        assert isinstance(first, HelgrindConfig)
        assert isinstance(second, HelgrindConfig)


class TestReport:
    def test_render_is_the_byte_identity_contract(self, t1_trace):
        path, live = t1_trace
        det = profile("hwlc+dr").detector()
        replay_trace(path, det)
        assert det.report.render() == json.dumps(live, indent=2)

    def test_findings_vocabulary(self, t1_trace):
        path, _ = t1_trace
        det = profile("hwlc+dr").detector()
        replay_trace(path, det)
        findings = det.report.findings()
        assert findings, "T1 must report at least one location"
        for finding in findings:
            assert finding.kind in (
                "race", "deadlock", "predicted_race", "predicted_deadlock",
            )
            assert finding.predicted == finding.kind.startswith("predicted_")
        assert det.report.predicted_findings() == [
            f for f in findings if f.predicted
        ]

    def test_to_json_schema_valid(self, t1_trace):
        from repro.detectors.report import (
            REPORT_SCHEMA_VERSION,
            validate_report_json,
        )

        path, _ = t1_trace
        det = profile("hwlc+dr").detector()
        replay_trace(path, det)
        doc = det.report.to_json()
        assert doc["version"] == REPORT_SCHEMA_VERSION
        assert validate_report_json(doc) == []
        # A mangled document reports problems instead of passing.
        broken = dict(doc, findings=[{"kind": "nonsense"}])
        assert validate_report_json(broken)

    def test_from_dict_round_trip(self, t1_trace):
        from repro.detectors.report import Report

        path, live = t1_trace
        report = Report.from_dict(live)
        assert report.render() == json.dumps(live, indent=2)


class TestPipeline:
    def test_detector_factory(self):
        pipeline = Pipeline("original")
        det = pipeline.detector()
        assert isinstance(det, HelgrindDetector)
        assert det is not pipeline.detector()

    def test_accepts_ready_config(self):
        pipeline = Pipeline(HelgrindConfig.hwlc_dr())
        assert pipeline.config_name is None
        assert isinstance(pipeline.detector(), HelgrindDetector)

    def test_unknown_name_rejected_at_construction(self):
        with pytest.raises(ValueError):
            Pipeline("nope")

    def test_replay_matches_replay_trace(self, t1_trace):
        path, _live = t1_trace
        report = Pipeline("hwlc+dr").replay(path)
        assert json.dumps(report.to_dict(), indent=2) == _offline_text(
            path, "hwlc+dr"
        )

    def test_run_case_requires_named_config(self):
        with pytest.raises(ValueError):
            Pipeline(HelgrindConfig.hwlc_dr()).run_case("T1")

    def test_run_case_unknown_case(self):
        with pytest.raises(ValueError) as exc:
            Pipeline("hwlc+dr").run_case("T99")
        assert "T1" in str(exc.value)


class TestSession:
    def test_single_feed_matches_offline(self, t1_trace):
        path, live = t1_trace
        session = Session("hwlc+dr")
        session.feed(path.read_bytes())
        assert session.report_text() == _offline_text(path, "hwlc+dr")
        assert session.report.to_dict() == live

    def test_chunked_feed_matches_offline(self, t1_trace):
        path, _ = t1_trace
        data = path.read_bytes()
        session = Session("hwlc+dr")
        rng = random.Random(11)
        pos = 0
        while pos < len(data):
            n = rng.randint(1, 2048)
            session.feed(data[pos:pos + n])
            pos += n
        assert session.bytes_fed == len(data)
        assert session.pending_bytes == 0
        assert session.report_text() == _offline_text(path, "hwlc+dr")

    def test_other_configs_match_offline(self, t1_trace):
        path, _ = t1_trace
        for config in ("original", "hwlc"):
            session = Session(config)
            session.feed(path.read_bytes())
            assert session.report_text() == _offline_text(path, config)

    def test_predictive_session_finalizes(self, t1_trace):
        """The predictive profile streams like any other, with the
        predicted findings appended at finalize() — on T1 there are
        none, so the text stays byte-identical to hwlc+dr replay."""
        path, _ = t1_trace
        session = Session("predictive")
        session.feed(path.read_bytes())
        session.finalize()
        assert session.report_text() == _offline_text(path, "predictive")

    def test_snapshot_restore_mid_stream(self, t1_trace):
        path, _ = t1_trace
        data = path.read_bytes()
        session = Session("hwlc+dr")
        cut = len(data) // 2 + 5  # mid-record on purpose
        session.feed(data[:cut])
        blob = session.snapshot()

        resumed = Session.restore(blob)
        assert resumed.bytes_fed == session.bytes_fed
        assert resumed.events_seen == session.events_seen
        resumed.feed(data[resumed.bytes_fed:])
        assert resumed.report_text() == _offline_text(path, "hwlc+dr")

    def test_snapshot_restores_in_fresh_process(self, t1_trace, tmp_path):
        """A checkpoint must survive a *server restart*: lock-set ids
        index a process-global interning table, so a snapshot restored
        in another process — one whose table holds different sets at
        those ids — has to re-intern and remap.  (In-process restore
        can never catch this: the global table still has the ids.)"""
        import os
        import pathlib
        import subprocess
        import sys

        path, _ = t1_trace
        data = path.read_bytes()
        session = Session("hwlc+dr")
        session.feed(data[: len(data) // 2 + 5])
        blob_file = tmp_path / "snap.pkl"
        blob_file.write_bytes(session.snapshot())

        script = """
import sys
from repro.detectors.lockset import LOCKSETS
# Skew the fresh process's table so every restored id is wrong
# unless restore remaps: intern sets the snapshot never saw.
for i in (901, 902, 903):
    LOCKSETS.id_of(frozenset({i}))
from repro.api import Session
session = Session.restore(open(sys.argv[1], "rb").read())
data = open(sys.argv[2], "rb").read()
session.feed(data[session.bytes_fed:])
sys.stdout.write(session.report_text())
"""
        src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p
        )
        result = subprocess.run(
            [sys.executable, "-c", script, str(blob_file), str(path)],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout == _offline_text(path, "hwlc+dr")

    def test_restore_preserves_pipeline_suppressions(self, t1_trace):
        """Suppressions ride through snapshot/restore at the pipeline
        level too: detectors built *from the restored pipeline* must be
        suppressed, not just the pickled detector itself."""
        from repro.detectors.suppressions import SuppressionEntry, Suppressions

        path, _ = t1_trace
        sup = Suppressions([SuppressionEntry("ride-along", "no-such-kind")])
        session = Session("hwlc+dr", suppressions=sup)
        session.feed(path.read_bytes())

        restored = Session.restore(session.snapshot())
        restored_sup = restored.pipeline.suppressions
        assert restored_sup is not None
        assert [e.name for e in restored_sup.entries] == ["ride-along"]
        det = restored.pipeline.detector()
        assert det.report.suppressions is restored_sup

    def test_restore_rejects_unknown_version(self):
        import pickle

        blob = pickle.dumps({"version": 999})
        with pytest.raises(ValueError):
            Session.restore(blob)

    def test_feed_events_matches_byte_feed(self, t1_trace):
        from repro.runtime.trace import load_trace

        path, _ = t1_trace
        events = list(load_trace(path))
        by_events = Session("hwlc+dr")
        by_events.feed_events(events)
        assert by_events.events_seen == len(events)
        assert by_events.report_text() == _offline_text(path, "hwlc+dr")

    def test_from_pipeline(self, t1_trace):
        path, _ = t1_trace
        session = Pipeline("hwlc+dr").session()
        session.feed(path.read_bytes())
        assert session.report_text() == _offline_text(path, "hwlc+dr")


class TestPackageExports:
    def test_root_reexports(self):
        assert repro.Session is Session
        assert repro.Pipeline is Pipeline
        assert repro.detector_config is api_module.detector_config
        assert repro.detector_configs is api_module.detector_configs
        assert repro.api.SNAPSHOT_VERSION == 1

    def test_all_names_resolve(self):
        for name in ("Pipeline", "Session", "detector_config",
                     "detector_configs", "api"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None
