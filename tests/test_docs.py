"""Documentation stays honest: code blocks in the docs actually run.

Stale documentation is worse than none; these tests execute the MiniCxx
program embedded in ``docs/MINICXX.md`` and the guest program embedded
in ``docs/GUEST_API.md``, and spot-check that the README's claims match
the code."""

from __future__ import annotations

import re
from pathlib import Path

DOCS = Path(__file__).resolve().parent.parent / "docs"
ROOT = DOCS.parent


def _code_blocks(path: Path, language: str) -> list[str]:
    text = path.read_text(encoding="utf-8")
    return re.findall(rf"```{language}\n(.*?)```", text, re.S)


class TestMiniCxxDoc:
    def test_example_program_builds_and_runs(self):
        from repro.instrument import BuildOptions, BuildPipeline
        from repro.runtime import VM

        (code,) = [
            b for b in _code_blocks(DOCS / "MINICXX.md", "cpp") if "fn main" in b
        ]
        pipe = BuildPipeline(includes={"config.h": "#define N 4\n"})
        art = pipe.build(code, BuildOptions(instrument=True))
        result = VM().run(art.program.main)
        assert result == 1
        assert "urgent" in art.program.last_output
        assert art.annotated_sites == art.delete_sites == 1

    def test_figure4_helper_block_matches_generator(self):
        from repro.instrument.annotate import HELPER_NAME

        text = (DOCS / "MINICXX.md").read_text(encoding="utf-8")
        assert HELPER_NAME in text
        assert "hg_destruct(object);" in text


class TestGuestApiDoc:
    def test_example_program_runs(self):
        from repro.runtime import VM

        blocks = _code_blocks(DOCS / "GUEST_API.md", "python")
        program_block = next(b for b in blocks if "def program(api):" in b)
        namespace: dict = {}
        exec(program_block, namespace)  # defines program & runs VM().run
        assert "program" in namespace

    def test_api_table_lists_real_methods(self):
        from repro.runtime.vm import GuestAPI

        text = (DOCS / "GUEST_API.md").read_text(encoding="utf-8")
        for method in (
            "malloc", "free", "load", "store", "atomic_add", "atomic_cas",
            "mutex", "rwlock", "cond_wait", "sem_post", "barrier_wait",
            "spawn", "join", "hg_destruct", "benign_race",
        ):
            assert method in text, method
            assert hasattr(GuestAPI, method.split("(")[0]), method


class TestReadme:
    def test_quickstart_block_runs(self):
        blocks = _code_blocks(ROOT / "README.md", "python")
        quickstart = next(b for b in blocks if "def program(api):" in b)
        namespace: dict = {}
        exec(quickstart, namespace)

    def test_config_table_names_exist(self):
        from repro.detectors import HelgrindConfig

        text = (ROOT / "README.md").read_text(encoding="utf-8")
        for factory in ("original", "hwlc", "hwlc_dr", "extended", "raw_eraser"):
            assert getattr(HelgrindConfig, factory)  # exists
            assert factory.replace("_", "") in text.replace("_", "").replace(".", "")


class TestAlgorithmsDoc:
    def test_referenced_symbols_exist(self):
        """Every module path the algorithms doc cites must import."""
        import importlib

        text = (DOCS / "ALGORITHMS.md").read_text(encoding="utf-8")
        for module in set(re.findall(r"`repro/([a-z_/]+)\.py`", text)):
            importlib.import_module("repro." + module.replace("/", "."))


class TestObservabilityDoc:
    """docs/OBSERVABILITY.md is the metric contract — keep it honest."""

    def _families_in_doc(self) -> set[str]:
        text = (DOCS / "OBSERVABILITY.md").read_text(encoding="utf-8")
        return set(re.findall(r"`(repro_[a-z_]+)`", text))

    def test_catalogue_covers_an_instrumented_run(self):
        from repro.detectors import HelgrindConfig, HelgrindDetector
        from repro.experiments.performance import workload_guest
        from repro.runtime import VM, RoundRobinScheduler
        from repro.telemetry import Telemetry

        telemetry = Telemetry(trace=True, batch_events=64)
        vm = VM(
            scheduler=RoundRobinScheduler(),
            detectors=(HelgrindDetector(HelgrindConfig.hwlc_dr()),),
            telemetry=telemetry,
        )
        telemetry.attach(vm, time_emit=True)
        with telemetry.phase("doc-check"):
            vm.run(workload_guest, 2, 40)
        telemetry.record_run(vm)
        emitted = set(telemetry.snapshot()["metrics"])
        # The repro_service_* namespace is the analysis server's own
        # catalogue, checked two-way by test_service_catalogue_is_real.
        documented = {
            f
            for f in self._families_in_doc()
            if not f.startswith("repro_service_")
        }
        # Everything the pipeline emits is documented ...
        assert emitted <= documented, emitted - documented
        # ... and everything documented is real (emitted here, or only
        # produced by runs with suppressions in play).
        optional = {"repro_warnings_suppressed_total"}
        assert documented - emitted <= optional, documented - emitted

    def test_service_catalogue_is_real(self):
        """Every documented ``repro_service_*`` family is registered by
        the service code, and every family the service registers is
        documented — no drift in either direction."""
        import inspect

        from repro.service import server, session, shard

        source = (
            inspect.getsource(server)
            + inspect.getsource(session)
            + inspect.getsource(shard)
        )
        registered = set(re.findall(r'"(repro_service_[a-z_]+)"', source))
        documented = {
            f
            for f in self._families_in_doc()
            if f.startswith("repro_service_")
        }
        assert documented == registered, documented ^ registered

    def test_detector_summary_vocabulary_documented(self):
        from repro.detectors import (
            AtomizerDetector,
            DjitDetector,
            HelgrindConfig,
            HelgrindDetector,
            HighLevelRaceDetector,
            HybridDetector,
            LockGraphDetector,
            RaceTrackDetector,
        )

        text = (DOCS / "OBSERVABILITY.md").read_text(encoding="utf-8")
        detectors = (
            HelgrindDetector(HelgrindConfig.hwlc_dr()),
            DjitDetector(),
            RaceTrackDetector(),
            HybridDetector(),
            AtomizerDetector(),
            LockGraphDetector(),
            HighLevelRaceDetector(),
        )
        for det in detectors:
            assert f"**{det.telemetry_name}**" in text, det.telemetry_name
            for stat in det.telemetry_summary():
                assert f"`{stat}`" in text, (det.telemetry_name, stat)

    def test_schema_required_families_documented(self):
        from repro.telemetry.schema import REQUIRED_FAMILIES

        documented = self._families_in_doc()
        assert set(REQUIRED_FAMILIES) <= documented
