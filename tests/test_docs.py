"""Documentation stays honest: code blocks in the docs actually run.

Stale documentation is worse than none; these tests execute the MiniCxx
program embedded in ``docs/MINICXX.md`` and the guest program embedded
in ``docs/GUEST_API.md``, and spot-check that the README's claims match
the code."""

from __future__ import annotations

import re
from pathlib import Path

DOCS = Path(__file__).resolve().parent.parent / "docs"
ROOT = DOCS.parent


def _code_blocks(path: Path, language: str) -> list[str]:
    text = path.read_text(encoding="utf-8")
    return re.findall(rf"```{language}\n(.*?)```", text, re.S)


class TestMiniCxxDoc:
    def test_example_program_builds_and_runs(self):
        from repro.instrument import BuildOptions, BuildPipeline
        from repro.runtime import VM

        (code,) = [
            b for b in _code_blocks(DOCS / "MINICXX.md", "cpp") if "fn main" in b
        ]
        pipe = BuildPipeline(includes={"config.h": "#define N 4\n"})
        art = pipe.build(code, BuildOptions(instrument=True))
        result = VM().run(art.program.main)
        assert result == 1
        assert "urgent" in art.program.last_output
        assert art.annotated_sites == art.delete_sites == 1

    def test_figure4_helper_block_matches_generator(self):
        from repro.instrument.annotate import HELPER_NAME

        text = (DOCS / "MINICXX.md").read_text(encoding="utf-8")
        assert HELPER_NAME in text
        assert "hg_destruct(object);" in text


class TestGuestApiDoc:
    def test_example_program_runs(self):
        from repro.runtime import VM

        blocks = _code_blocks(DOCS / "GUEST_API.md", "python")
        program_block = next(b for b in blocks if "def program(api):" in b)
        namespace: dict = {}
        exec(program_block, namespace)  # defines program & runs VM().run
        assert "program" in namespace

    def test_api_table_lists_real_methods(self):
        from repro.runtime.vm import GuestAPI

        text = (DOCS / "GUEST_API.md").read_text(encoding="utf-8")
        for method in (
            "malloc", "free", "load", "store", "atomic_add", "atomic_cas",
            "mutex", "rwlock", "cond_wait", "sem_post", "barrier_wait",
            "spawn", "join", "hg_destruct", "benign_race",
        ):
            assert method in text, method
            assert hasattr(GuestAPI, method.split("(")[0]), method


class TestReadme:
    def test_quickstart_block_runs(self):
        blocks = _code_blocks(ROOT / "README.md", "python")
        quickstart = next(b for b in blocks if "def program(api):" in b)
        namespace: dict = {}
        exec(quickstart, namespace)

    def test_config_table_names_exist(self):
        from repro.detectors import HelgrindConfig

        text = (ROOT / "README.md").read_text(encoding="utf-8")
        for factory in ("original", "hwlc", "hwlc_dr", "extended", "raw_eraser"):
            assert getattr(HelgrindConfig, factory)  # exists
            assert factory.replace("_", "") in text.replace("_", "").replace(".", "")


class TestAlgorithmsDoc:
    def test_referenced_symbols_exist(self):
        """Every module path the algorithms doc cites must import."""
        import importlib

        text = (DOCS / "ALGORITHMS.md").read_text(encoding="utf-8")
        for module in set(re.findall(r"`repro/([a-z_/]+)\.py`", text)):
            importlib.import_module("repro." + module.replace("/", "."))
