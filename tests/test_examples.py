"""Every example script must run cleanly end to end.

Run as subprocesses so the examples are exercised exactly the way a
user runs them (fresh interpreter, ``__main__`` guard, assertions on)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "the repo promises at least three examples"
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script: Path):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert proc.stdout.strip(), "examples must narrate what they show"


def test_quickstart_output_shape():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert "Possible data race" in proc.stdout
    assert "sloppy_worker" in proc.stdout


def test_stringtest_shows_both_models():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "stringtest.py")],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert "_M_grab" in proc.stdout
    assert "warnings: 0" in proc.stdout
