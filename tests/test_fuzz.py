"""Fuzz-style robustness properties for the parsing front-ends.

Parsers guard the boundary between hostile input and the rest of the
system, so they must never die with anything except their declared
error type — no matter what bytes arrive.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.errors import LexError, ParseError, SipParseError
from repro.instrument.lexer import tokenize
from repro.instrument.parser import parse
from repro.instrument.preprocess import preprocess
from repro.errors import InstrumentError
from repro.sip.message import Header, SipMessage
from repro.sip.parser import parse_message, serialize_message


class TestSipParserFuzz:
    @settings(max_examples=200)
    @given(st.text(max_size=300))
    def test_arbitrary_text_never_crashes(self, text):
        """Random input either parses or raises SipParseError — nothing
        else escapes."""
        try:
            parse_message(text)
        except SipParseError:
            pass

    @settings(max_examples=100)
    @given(st.binary(max_size=120))
    def test_latin1_garbage_never_crashes(self, data):
        try:
            parse_message(data.decode("latin-1"))
        except SipParseError:
            pass

    @settings(max_examples=100)
    @given(
        st.sampled_from(["INVITE", "BYE", "REGISTER", "OPTIONS", "NOTIFY"]),
        st.lists(
            st.tuples(
                st.text(
                    alphabet=st.characters(
                        whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=127
                    ),
                    min_size=1,
                    max_size=12,
                ),
                st.text(
                    alphabet=st.characters(
                        blacklist_characters="\r\n\x00", max_codepoint=127
                    ),
                    max_size=24,
                ),
            ),
            max_size=5,
        ),
        st.text(
            alphabet=st.characters(blacklist_characters="\x00", max_codepoint=127),
            max_size=40,
        ),
    )
    def test_constructed_messages_roundtrip(self, method, extra_headers, body):
        msg = SipMessage.request(
            method,
            "sip:fuzz@example.com",
            call_id="fuzz-1",
            cseq=1,
            from_uri="sip:a@x",
            to_uri="sip:b@y",
            extra=[Header(n, v.strip()) for n, v in extra_headers],
            body=body,
        )
        reparsed = parse_message(serialize_message(msg))
        assert reparsed.method == method
        assert reparsed.body == body
        for name, value in extra_headers:
            assert reparsed.header(name) is not None


class TestMiniCxxFuzz:
    @settings(max_examples=200)
    @given(st.text(max_size=200))
    def test_lexer_total(self, text):
        """tokenize() terminates with tokens or LexError on any input."""
        try:
            tokens = tokenize(text)
        except LexError:
            return
        assert tokens[-1].kind == "eof"

    @settings(max_examples=200)
    @given(st.text(max_size=200))
    def test_parser_total(self, text):
        try:
            parse(text)
        except (LexError, ParseError):
            pass

    @settings(max_examples=100)
    @given(st.text(max_size=150))
    def test_preprocessor_total(self, text):
        try:
            preprocess(text)
        except InstrumentError:
            pass

    @settings(max_examples=60)
    @given(
        st.lists(
            st.sampled_from(
                [
                    "fn f() { return 1; }",
                    "global g = 0;",
                    "class C { field x; };",
                    "class D : C { dtor { } };",
                    'fn h(a) { if (a > 0) { return a; } return -a; }',
                    "fn loop() { var i = 0; while (i < 3) { i = i + 1; } }",
                ]
            ),
            max_size=5,
        )
    )
    def test_render_parse_fixed_point(self, snippets):
        """Any combination of valid declarations survives render→parse→
        render unchanged (modulo the first normalisation)."""
        from repro.instrument.render import render_module

        # Classes must precede uses; snippets are independent, so any
        # order parses as long as base classes come first.
        ordered = sorted(set(snippets), key=lambda s: (": C" in s, s))
        source = "\n".join(ordered)
        try:
            module = parse(source)
        except ParseError:
            return  # duplicate declarations etc. — fine
        text1 = render_module(module)
        text2 = render_module(parse(text1))
        assert text1 == text2
