"""Cross-cutting integration properties of the whole stack.

These tests exercise paths *across* packages: online vs post-mortem
equivalence, determinism of the complete proxy pipeline, detector
agreement on the big application, and the full MiniCxx → VM → detector →
classification chain.
"""

from __future__ import annotations

import pytest

from repro.detectors import (
    DjitDetector,
    HelgrindConfig,
    HelgrindDetector,
    LockGraphDetector,
)
from repro.detectors.classify import classify_report
from repro.oracle import GroundTruth, WarningCategory
from repro.runtime import VM, RandomScheduler
from repro.runtime.trace import TraceRecorder, replay
from repro.sip.bugs import EVALUATION_BUGS
from repro.sip.server import ProxyConfig, SipProxy
from repro.sip.workload import evaluation_cases


def record_proxy_run(*, seed=42, config=None, extra_detectors=()):
    recorder = TraceRecorder()
    truth = GroundTruth()
    proxy = SipProxy(config or ProxyConfig(bugs=EVALUATION_BUGS), truth=truth)
    vm = VM(
        detectors=(recorder, *extra_detectors),
        scheduler=RandomScheduler(seed),
        step_limit=10_000_000,
    )
    result = vm.run(proxy.main, evaluation_cases()[1].wires)
    return recorder, truth, result, vm


class TestOnlineOfflineEquivalence:
    """§4.5: on-the-fly and post-mortem analysis see the same stream,
    so detectors must produce identical reports either way."""

    @pytest.mark.parametrize(
        "make_detector",
        [
            lambda: HelgrindDetector(HelgrindConfig.original()),
            lambda: HelgrindDetector(HelgrindConfig.hwlc()),
            lambda: HelgrindDetector(HelgrindConfig.extended()),
            DjitDetector,
            LockGraphDetector,
        ],
        ids=["hg-original", "hg-hwlc", "hg-extended", "djit", "lockgraph"],
    )
    def test_replay_matches_online(self, make_detector):
        online = make_detector()
        recorder, _, _, vm = record_proxy_run(extra_detectors=(online,))
        offline = make_detector()
        replay(recorder.events, offline, vm=vm)
        assert offline.report.locations() == online.report.locations()
        assert offline.report.dynamic_count == online.report.dynamic_count


class TestPipelineDeterminism:
    def test_full_proxy_run_reproducible(self):
        r1 = record_proxy_run(seed=9)
        r2 = record_proxy_run(seed=9)
        assert r1[0].events == r2[0].events
        assert [w.status for w in r1[2].responses] == [
            w.status for w in r2[2].responses
        ]

    def test_different_seeds_different_interleavings(self):
        streams = set()
        for seed in range(3):
            recorder, *_ = record_proxy_run(seed=seed)
            streams.add(tuple((type(e).__name__, e.tid) for e in recorder.events))
        assert len(streams) > 1


class TestDetectorAgreement:
    def test_every_detector_survives_the_full_application(self):
        """All detectors coexist on one run without interference."""
        detectors = (
            HelgrindDetector(HelgrindConfig.original()),
            HelgrindDetector(HelgrindConfig.hwlc_dr()),
            DjitDetector(),
            LockGraphDetector(),
        )
        record_proxy_run(extra_detectors=detectors)
        # Sanity: the original config sees at least as much as hwlc+dr.
        assert (
            detectors[0].report.location_count
            >= detectors[1].report.location_count
        )

    def test_djit_addresses_within_lockset_original(self):
        """§2.2's containment on the full application: the addresses
        DJIT flags are a subset of what the (original) lock-set detector
        flags.  (Note DJIT legitimately reports the string refcount: a
        plain read racing a bus-locked write *is* an apparent race in
        the happens-before world — modern detectors agree — it is only
        the lock-set bus-lock *model* the paper's HWLC fix concerns.)"""
        djit = DjitDetector()
        lockset = HelgrindDetector(HelgrindConfig.original())
        _, _, _, vm = record_proxy_run(extra_detectors=(djit, lockset))

        def blocks(report):
            out = set()
            for w in report:
                if w.addr is not None:
                    block = vm.memory.find_block(w.addr)
                    out.add(block.block_id if block else w.addr)
            return out

        # Block granularity: location-deduplication records only the
        # first racy word per call stack, so exact word sets differ.
        assert blocks(djit.report) <= blocks(lockset.report)

    def test_djit_never_reports_queue_handoffs(self):
        """The Figure 11 class is a lock-set artefact; the happens-before
        baseline must not produce it even on the buggy proxy."""
        djit = DjitDetector()
        _, truth, _, _ = record_proxy_run(extra_detectors=(djit,))
        classified = classify_report(djit.report, truth)
        assert classified.count(WarningCategory.FP_OWNERSHIP) == 0


class TestMemoryHygiene:
    def test_proxy_run_releases_transaction_memory(self):
        """After the run every dialog's objects were really destroyed
        (the refcount protocol leaks nothing on the happy path)."""
        _, _, _, vm = record_proxy_run(config=ProxyConfig.fixed())
        leaked = [
            b
            for b in vm.memory.live_blocks()
            if b.tag.endswith("Transaction") or b.tag == "string.rep"
        ]
        # Domain-data strings and the banner legitimately live forever;
        # transaction objects must not.
        assert not [b for b in leaked if b.tag.endswith("Transaction")], leaked


class TestStepLimitSafety:
    def test_tight_budget_aborts_cleanly(self):
        from repro.errors import StepLimitExceeded

        truth = GroundTruth()
        proxy = SipProxy(ProxyConfig(bugs=EVALUATION_BUGS), truth=truth)
        vm = VM(scheduler=RandomScheduler(1), step_limit=500)
        with pytest.raises(StepLimitExceeded):
            vm.run(proxy.main, evaluation_cases()[0].wires)
        # The VM tore its carriers down; no host threads left running.
        import threading

        leftover = [
            t for t in threading.enumerate() if t.name.startswith("carrier-")
        ]
        assert not [t for t in leftover if t.is_alive()]
