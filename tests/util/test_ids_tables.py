"""Tests for id allocation and table formatting."""

from __future__ import annotations

import pytest

from repro._util.ids import IdAllocator
from repro._util.tables import format_table


class TestIdAllocator:
    def test_consecutive_from_zero(self):
        ids = IdAllocator()
        assert [ids.next() for _ in range(4)] == [0, 1, 2, 3]

    def test_custom_start(self):
        ids = IdAllocator(100)
        assert ids.next() == 100

    def test_peek_does_not_consume(self):
        ids = IdAllocator()
        assert ids.peek() == 0
        assert ids.peek() == 0
        assert ids.next() == 0
        assert ids.peek() == 1

    def test_reset(self):
        ids = IdAllocator()
        ids.next()
        ids.next()
        ids.reset()
        assert ids.next() == 0


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["case", "n"], [["T1", 483], ["T2", 319]])
        lines = out.splitlines()
        assert lines[0].split() == ["case", "n"]
        assert lines[2].split() == ["T1", "483"]
        assert lines[3].split() == ["T2", "319"]

    def test_numeric_columns_right_aligned(self):
        out = format_table(["case", "count"], [["T1", 5], ["T10", 12345]])
        rows = out.splitlines()[2:]
        # Right alignment: the short number ends at the same column as the long one.
        assert rows[0].rstrip().endswith("5")
        assert len(rows[0].rstrip()) == len(rows[1].rstrip())

    def test_title_is_first_line(self):
        out = format_table(["a"], [["x"]], title="Figure 6")
        assert out.splitlines()[0] == "Figure 6"

    def test_float_formatting(self):
        out = format_table(["a", "f"], [["x", 0.123456]])
        assert "0.12" in out

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        out = format_table(["a", "b"], [])
        assert len(out.splitlines()) == 2
