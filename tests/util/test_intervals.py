"""Tests for interval containers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro._util.intervals import IntervalMap, IntervalSet


class TestIntervalMap:
    def test_lookup_hit_and_miss(self):
        m = IntervalMap()
        m.add(10, 20, "a")
        assert m.lookup(10) == "a"
        assert m.lookup(19) == "a"
        assert m.lookup(20) is None
        assert m.lookup(9) is None

    def test_newest_wins_on_overlap(self):
        m = IntervalMap()
        m.add(0, 100, "old")
        m.add(50, 60, "new")
        assert m.lookup(55) == "new"
        assert m.lookup(10) == "old"

    def test_lookup_all_newest_first(self):
        m = IntervalMap()
        m.add(0, 10, "a")
        m.add(0, 10, "b")
        assert m.lookup_all(5) == ["b", "a"]

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            IntervalMap().add(5, 5, "x")

    def test_len_and_iter(self):
        m = IntervalMap()
        m.add(0, 1, "x")
        m.add(2, 3, "y")
        assert len(m) == 2
        assert list(m) == [(0, 1, "x"), (2, 3, "y")]


class TestIntervalSet:
    def test_contains(self):
        s = IntervalSet()
        s.add(10, 20)
        assert 10 in s
        assert 19 in s
        assert 20 not in s
        assert 9 not in s

    def test_disjoint_intervals(self):
        s = IntervalSet()
        s.add(0, 5)
        s.add(10, 15)
        assert len(s) == 2
        assert 3 in s and 12 in s and 7 not in s

    def test_merge_overlapping(self):
        s = IntervalSet()
        s.add(0, 10)
        s.add(5, 15)
        assert len(s) == 1
        assert list(s) == [(0, 15)]

    def test_merge_touching(self):
        s = IntervalSet()
        s.add(0, 10)
        s.add(10, 20)
        assert len(s) == 1
        assert list(s) == [(0, 20)]

    def test_merge_spanning_several(self):
        s = IntervalSet()
        s.add(0, 2)
        s.add(4, 6)
        s.add(8, 10)
        s.add(1, 9)
        assert list(s) == [(0, 10)]

    def test_total_words(self):
        s = IntervalSet()
        s.add(0, 5)
        s.add(10, 12)
        assert s.total_words == 7

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            IntervalSet().add(3, 3)


@given(st.lists(st.tuples(st.integers(0, 200), st.integers(1, 20)), max_size=30))
def test_property_intervalset_matches_naive(pairs):
    """IntervalSet membership agrees with a naive set of integers."""
    s = IntervalSet()
    naive: set[int] = set()
    for start, length in pairs:
        s.add(start, start + length)
        naive.update(range(start, start + length))
    for x in range(0, 230):
        assert (x in s) == (x in naive)
    # Internal representation stays disjoint and sorted.
    spans = list(s)
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 < s2
    assert s.total_words == len(naive)
