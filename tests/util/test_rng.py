"""Tests for the SplitMix64 PRNG."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro._util.rng import SplitMix64


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = SplitMix64(12345)
        b = SplitMix64(12345)
        assert [a.next_u64() for _ in range(100)] == [b.next_u64() for _ in range(100)]

    def test_different_seeds_differ(self):
        a = SplitMix64(1)
        b = SplitMix64(2)
        assert [a.next_u64() for _ in range(10)] != [b.next_u64() for _ in range(10)]

    def test_known_reference_value(self):
        # SplitMix64 with seed 0: first output is mix(golden-ratio increment);
        # pinned so cross-version drift is caught immediately.
        rng = SplitMix64(0)
        first = rng.next_u64()
        assert first == SplitMix64(0).next_u64()
        assert 0 <= first < (1 << 64)


class TestDistributionContracts:
    def test_randrange_bounds(self):
        rng = SplitMix64(7)
        for _ in range(1000):
            assert 0 <= rng.randrange(13) < 13

    def test_randrange_rejects_nonpositive(self):
        rng = SplitMix64(7)
        with pytest.raises(ValueError):
            rng.randrange(0)
        with pytest.raises(ValueError):
            rng.randrange(-5)

    def test_random_unit_interval(self):
        rng = SplitMix64(99)
        values = [rng.random() for _ in range(1000)]
        assert all(0.0 <= v < 1.0 for v in values)
        # Crude uniformity check: the mean of 1000 uniforms is near 0.5.
        assert 0.4 < sum(values) / len(values) < 0.6

    def test_choice_covers_all_elements(self):
        rng = SplitMix64(3)
        seen = {rng.choice("abcd") for _ in range(200)}
        assert seen == {"a", "b", "c", "d"}

    def test_choice_empty_raises(self):
        with pytest.raises(IndexError):
            SplitMix64(0).choice([])

    def test_shuffle_is_permutation(self):
        rng = SplitMix64(5)
        items = list(range(50))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # astronomically unlikely to be identity


class TestSplitting:
    def test_split_children_are_independent(self):
        parent = SplitMix64(42)
        child1 = parent.split()
        child2 = parent.split()
        assert [child1.next_u64() for _ in range(5)] != [
            child2.next_u64() for _ in range(5)
        ]

    def test_fork_does_not_consume_parent_state(self):
        a = SplitMix64(42)
        b = SplitMix64(42)
        a.fork("scheduler")
        a.fork("workload")
        # Forking by label must not advance the parent stream.
        assert a.next_u64() == b.next_u64()

    def test_fork_same_label_same_stream(self):
        a = SplitMix64(42).fork("x")
        b = SplitMix64(42).fork("x")
        assert [a.next_u64() for _ in range(5)] == [b.next_u64() for _ in range(5)]

    def test_fork_different_labels_differ(self):
        a = SplitMix64(42).fork("x")
        b = SplitMix64(42).fork("y")
        assert [a.next_u64() for _ in range(5)] != [b.next_u64() for _ in range(5)]


@given(st.integers(min_value=0, max_value=(1 << 64) - 1), st.integers(1, 10_000))
def test_randrange_always_in_bounds(seed, n):
    rng = SplitMix64(seed)
    for _ in range(20):
        assert 0 <= rng.randrange(n) < n


@given(st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_outputs_are_64_bit(seed):
    rng = SplitMix64(seed)
    for _ in range(20):
        assert 0 <= rng.next_u64() < (1 << 64)
